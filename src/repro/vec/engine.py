"""The vectorized policy-simulation engine for whole sweep cells.

:func:`simulate_batch` advances every vehicle of a
:class:`~repro.vec.batch.VecTripBatch` through the dl/ail/cil decision
algebra in lock step: a Python loop over ticks, NumPy arrays across
vehicles.  Each per-vehicle arithmetic step — deviation, §3.3 bound,
Proposition-1 threshold, update resets — uses the same float64
expressions in the same evaluation order as
:meth:`repro.sim.engine.PolicySimulation._run_fast`, and each
vehicle's accumulators receive the same additions in the same tick
order, so every :class:`~repro.sim.metrics.TripMetrics` field and
every :class:`~repro.sim.vehicle.UpdateEvent` is byte-identical to the
scalar fast path (``tests/vec/`` asserts exact equality).

Vehicles are processed in column blocks of :data:`BLOCK_VEHICLES` so
the per-tick temporaries stay cache-resident at fleet scale; rows are
independent, so blocking changes nothing about the values.  Update
firings are rare relative to ticks, so the per-tick work is a fixed
set of elementwise operations plus an indexed scatter for the
vehicles whose threshold fired.

Telemetry: the whole batch runs under one ``simulate_trip_batch``
span; per-tick registry instruments are not replicated here, which is
why the executor only dispatches to this path when neither the
metrics registry nor the tracer is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import (
    AverageImmediateLinearPolicy,
    DelayedLinearPolicy,
)
from repro.core.policy import THRESHOLD_TOLERANCE, UpdatePolicy
from repro.errors import SimulationError
from repro.obs.registry import span
from repro.sim.engine import TripResult, supports_fast_path
from repro.sim.metrics import TripMetrics
from repro.sim.vehicle import UpdateEvent, ZERO_DEVIATION_TOLERANCE
from repro.vec.batch import VecTripBatch

__all__ = [
    "BLOCK_VEHICLES",
    "simulate_batch",
]

#: Vehicles advanced together per tick-loop pass.  Large enough to
#: amortize NumPy call overhead, small enough that the ~20 live
#: (block,) temporaries fit in cache instead of streaming through RAM
#: (a block-size scan put the knee at 8k on the reference box).
BLOCK_VEHICLES = 8192


def simulate_batch(batch: VecTripBatch, policy: UpdatePolicy,
                   collect_events: bool = True) -> list[TripResult]:
    """Simulate every trip of ``batch`` under ``policy``.

    Returns one :class:`TripResult` per batch row, in row order.  With
    ``collect_events=False`` the per-update event lists are skipped
    (the executor only consumes metrics); metrics are identical either
    way.  Raises :class:`~repro.errors.SimulationError` for policies
    outside the dl/ail/cil fast-path family.
    """
    if not supports_fast_path(policy):
        raise SimulationError(
            f"policy {policy.name!r} is not supported by the vectorized "
            "engine; use the scalar PolicySimulation instead"
        )
    results: list[TripResult] = []
    # One errstate frame for the whole run: the masked divisions
    # (2C/elapsed at elapsed == 0, distance/elapsed on fire) are
    # replaced via np.where, so their warnings are pure noise.
    with span("simulate_trip_batch", policy=policy.name,
              vehicles=batch.size, duration=batch.duration, dt=batch.dt), \
            np.errstate(divide="ignore", invalid="ignore"):
        for start in range(0, batch.size, BLOCK_VEHICLES):
            stop = min(start + BLOCK_VEHICLES, batch.size)
            results.extend(
                _simulate_block(batch, policy, start, stop, collect_events)
            )
    return results


def _simulate_block(batch: VecTripBatch, policy: UpdatePolicy, start: int,
                    stop: int, collect_events: bool) -> list[TripResult]:
    """Run one column block ``[start, stop)`` of the batch."""
    n = stop - start
    num_ticks = batch.num_ticks
    dt = batch.dt
    duration = batch.duration
    times = batch.times
    travel = batch.travel
    speeds = batch.speeds
    max_speeds = batch.max_speeds[start:stop]
    update_cost = policy.update_cost
    use_delay = isinstance(policy, DelayedLinearPolicy)
    declare_average = isinstance(policy, AverageImmediateLinearPolicy)
    send_slack = 1.0 - THRESHOLD_TOLERANCE
    two_cost = 2.0 * update_cost

    # Per-vehicle onboard/DBMS state, exactly the scalars of _run_fast
    # widened to (n,) arrays.
    declared = speeds[0, start:stop].copy()
    last_update_time = np.zeros(n, dtype=np.float64)
    last_update_travel = np.zeros(n, dtype=np.float64)
    last_zero_elapsed = np.zeros(n, dtype=np.float64)
    gap = max_speeds - declared
    gap = np.where(gap < 0.0, 0.0, gap)
    if use_delay:
        slow_plateau = np.sqrt(2.0 * declared * update_cost)
        fast_plateau = np.sqrt(2.0 * gap * update_cost)
    else:
        slow_plateau = fast_plateau = None

    # The fast path accrues deviation_integral and deviation_cost with
    # the identical `deviation * dt` addend each tick (uniform cost),
    # so one accumulator serves both metrics bit-for-bit.
    deviation_integral = np.zeros(n, dtype=np.float64)
    uncertainty_integral = np.zeros(n, dtype=np.float64)
    max_deviation = np.zeros(n, dtype=np.float64)
    max_uncertainty = np.zeros(n, dtype=np.float64)
    num_updates = np.zeros(n, dtype=np.int64)
    events: list[list[UpdateEvent]] = [[] for _ in range(n)]

    # Preallocated per-tick scratch.  Every elementwise op below writes
    # into one of these via ``out=`` so the hot loop allocates nothing.
    elapsed = np.empty(n, dtype=np.float64)
    v_elapsed = np.empty(n, dtype=np.float64)
    g_elapsed = np.empty(n, dtype=np.float64)
    deviation = np.empty(n, dtype=np.float64)
    bound = np.empty(n, dtype=np.float64)
    slow = np.empty(n, dtype=np.float64)
    slope = np.empty(n, dtype=np.float64)
    ab = np.empty(n, dtype=np.float64)
    threshold = np.empty(n, dtype=np.float64)
    tmp = np.empty(n, dtype=np.float64)
    zero = np.empty(n, dtype=np.bool_)
    positive = np.empty(n, dtype=np.bool_)
    fire = np.empty(n, dtype=np.bool_)

    for i in range(1, num_ticks + 1):
        t = float(times[i])
        # Tick times are strictly increasing and last_update_time only
        # ever holds an earlier tick's time, so elapsed >= dt > 0 on
        # every lane: the scalar engine's elapsed <= 0 guards (the inf
        # bound cap and the 1e-9 slope floor) are unreachable here.
        np.subtract(t, last_update_time, out=elapsed)
        actual = travel[i, start:stop]
        np.multiply(declared, elapsed, out=v_elapsed)
        np.add(last_update_travel, v_elapsed, out=deviation)
        np.subtract(actual, deviation, out=deviation)
        np.fabs(deviation, out=deviation)
        np.less_equal(deviation, ZERO_DEVIATION_TOLERANCE, out=zero)
        if zero.any():
            np.copyto(last_zero_elapsed, elapsed, where=zero)
            np.copyto(deviation, 0.0, where=zero)

        np.multiply(gap, elapsed, out=g_elapsed)
        if use_delay:
            np.minimum(v_elapsed, slow_plateau, out=slow)
            np.minimum(g_elapsed, fast_plateau, out=bound)
            np.maximum(slow, bound, out=bound)
        else:
            # max(min(vt, cap), min(gap*t, cap)) == min(max(vt, gap*t),
            # cap): min/max only select inputs, so the fused form picks
            # the same float the scalar branch picks.
            np.divide(two_cost, elapsed, out=slow)
            np.maximum(v_elapsed, g_elapsed, out=bound)
            np.minimum(bound, slow, out=bound)

        np.multiply(deviation, dt, out=tmp)
        deviation_integral += tmp
        np.multiply(bound, dt, out=tmp)
        uncertainty_integral += tmp
        np.maximum(max_deviation, deviation, out=max_deviation)
        np.maximum(max_uncertainty, bound, out=max_uncertainty)

        np.greater(deviation, 0.0, out=positive)
        if not positive.any():
            continue
        # Inlined SimpleFitting.fit + Proposition 1, over all lanes.
        # Lanes with zero deviation can never fire: under dl their
        # slope is 0/0 = NaN (delay was set to this very elapsed), so
        # the fire comparison is False; otherwise their threshold is 0
        # and `positive` gates them out.  Positive lanes always have
        # effective >= dt > 0 (a zero tick can only be an earlier,
        # smaller elapsed), so the scalar 1e-9 floor is unreachable.
        if use_delay:
            np.subtract(elapsed, last_zero_elapsed, out=slope)
            np.divide(deviation, slope, out=slope)
            np.multiply(slope, last_zero_elapsed, out=ab)
            np.multiply(ab, ab, out=threshold)
            np.multiply(2.0, slope, out=tmp)
            np.multiply(tmp, update_cost, out=tmp)
            np.add(threshold, tmp, out=threshold)
            np.sqrt(threshold, out=threshold)
            np.subtract(threshold, ab, out=threshold)
        else:
            np.divide(deviation, elapsed, out=slope)
            np.multiply(2.0, slope, out=tmp)
            np.multiply(tmp, update_cost, out=tmp)
            np.sqrt(tmp, out=threshold)
        np.multiply(threshold, send_slack, out=tmp)
        np.greater_equal(deviation, tmp, out=fire)
        np.logical_and(fire, positive, out=fire)
        if not fire.any():
            continue

        idx = np.nonzero(fire)[0]
        fired_travel = actual[idx]
        if declare_average:
            fired_elapsed = elapsed[idx]
            distance = fired_travel - last_update_travel[idx]
            distance = np.where(distance < 0.0, 0.0, distance)
            ratio = distance / fired_elapsed
            new_speed = np.where(fired_elapsed > 0.0, ratio, declared[idx])
        else:
            new_speed = speeds[i, start:stop][idx]
        new_speed = np.where(new_speed < 0.0, 0.0, new_speed)

        if collect_events:
            fired_threshold = threshold[idx]
            fired_deviation = deviation[idx]
            rows = idx.tolist()
            for pos, row in enumerate(rows):
                events[row].append(UpdateEvent(
                    time=t,
                    travel=float(fired_travel[pos]),
                    declared_speed=float(new_speed[pos]),
                    threshold=float(fired_threshold[pos]),
                    deviation_at_update=float(fired_deviation[pos]),
                ))
        num_updates[idx] += 1
        last_update_time[idx] = t
        last_update_travel[idx] = fired_travel
        declared[idx] = new_speed
        last_zero_elapsed[idx] = 0.0
        fired_gap = max_speeds[idx] - new_speed
        fired_gap = np.where(fired_gap < 0.0, 0.0, fired_gap)
        gap[idx] = fired_gap
        if use_delay:
            slow_plateau[idx] = np.sqrt(2.0 * new_speed * update_cost)
            fast_plateau[idx] = np.sqrt(2.0 * fired_gap * update_cost)

    results: list[TripResult] = []
    for row in range(n):
        updates = int(num_updates[row])
        dev_integral = float(deviation_integral[row])
        unc_integral = float(uncertainty_integral[row])
        metrics = TripMetrics(
            policy=policy.name,
            update_cost=update_cost,
            duration=duration,
            num_updates=updates,
            deviation_integral=dev_integral,
            deviation_cost=dev_integral,
            total_cost=update_cost * updates + dev_integral,
            avg_deviation=dev_integral / duration,
            max_deviation=float(max_deviation[row]),
            avg_uncertainty=unc_integral / duration,
            max_uncertainty=float(max_uncertainty[row]),
        )
        results.append(TripResult(
            metrics=metrics,
            updates=events[row] if collect_events else [],
            series=None,
        ))
    return results
