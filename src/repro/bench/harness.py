"""The benchmark registry and timing harness.

Every ``benchmarks/bench_*.py`` script registers its measured section
here with the :func:`benchmark` decorator.  A registered case is a
**factory**: called once per run, it performs its own setup (building
trips, databases, indexes) and returns the zero-argument kernel the
harness times — so cases are self-contained and need no pytest
fixtures.  The harness then runs warmup iterations (untimed) followed
by repeat iterations, and reports min / median / mean / stddev
wall-clock seconds per case.

Results are emitted as a versioned JSON document
(:data:`SCHEMA_VERSION`, validated by :func:`validate_results`) that
carries an environment fingerprint — python version, CPU count,
platform, git SHA — so a sequence of result files forms a perf
*trajectory* and cross-machine comparisons are explicitly visible as
such.  Baseline comparison and regression gating live in
:mod:`repro.bench.baseline`.
"""

from __future__ import annotations

import importlib.util
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from statistics import mean, median, stdev
from typing import Callable, Iterable

from repro.errors import ReproError

#: Version of the result-document schema.  Bump on breaking changes;
#: consumers (baseline gate, CI artifact tooling) check it first.
SCHEMA_VERSION = 1

#: ``schema`` field value: a name + version pair in one string.
SCHEMA_NAME = f"repro-bench/{SCHEMA_VERSION}"

#: Default timing discipline (overridable per case and per run).
DEFAULT_WARMUP = 2
DEFAULT_REPEAT = 5
FAST_WARMUP = 1
FAST_REPEAT = 3


class BenchmarkError(ReproError):
    """A benchmark case or result document is malformed."""


@dataclass(slots=True)
class BenchmarkCase:
    """One registered benchmark: a named, grouped kernel factory."""

    name: str
    group: str
    factory: Callable[[], Callable[[], object]]
    warmup: int | None = None
    repeat: int | None = None
    description: str = ""


_REGISTRY: dict[str, BenchmarkCase] = {}


def benchmark(name: str, group: str = "misc",
              warmup: int | None = None, repeat: int | None = None):
    """Register the decorated factory as benchmark ``name``.

    The factory is called once per run with no arguments; whatever
    setup it performs is *not* timed.  It must return a zero-argument
    callable — the kernel the harness times.  ``group`` buckets cases
    into families (``engine``, ``sweep``, ``query_batch``, ...); the
    per-group ``BENCH_<group>.json`` trajectory artifacts and the
    smoke tests key off it.
    """

    def register(factory):
        if name in _REGISTRY:
            raise BenchmarkError(f"benchmark {name!r} registered twice")
        _REGISTRY[name] = BenchmarkCase(
            name=name, group=group, factory=factory,
            warmup=warmup, repeat=repeat,
            description=(factory.__doc__ or "").strip().split("\n")[0],
        )
        return factory

    return register


def registered_cases() -> list[BenchmarkCase]:
    """All registered cases, sorted by (group, name)."""
    return sorted(_REGISTRY.values(), key=lambda c: (c.group, c.name))


def get_case(name: str) -> BenchmarkCase:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BenchmarkError(f"no benchmark named {name!r}") from None


def clear_registry() -> None:
    """Forget every registered case (test isolation)."""
    _REGISTRY.clear()


def load_directory(path: str | Path) -> int:
    """Import every ``bench_*.py`` under ``path``; returns module count.

    Importing a script executes its module-level :func:`benchmark`
    registrations.  Scripts already imported (by a previous call or by
    pytest) are skipped, so re-registration cannot collide.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise BenchmarkError(f"benchmark directory not found: {directory}")
    loaded = 0
    for script in sorted(directory.glob("bench_*.py")):
        module_name = f"repro_bench_scripts.{script.stem}"
        if module_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(module_name, script)
        if spec is None or spec.loader is None:  # pragma: no cover
            raise BenchmarkError(f"cannot load benchmark script {script}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except BaseException:
            del sys.modules[module_name]
            raise
        loaded += 1
    return loaded


def environment_fingerprint() -> dict:
    """Where this run happened: enough to judge comparability.

    Two fingerprints agreeing on ``platform`` + ``cpu_count`` +
    ``python`` are same-machine-comparable; anything else is an
    advisory cross-machine comparison (see EXPERIMENTS.md).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:  # pragma: no cover - git missing entirely
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass(slots=True)
class CaseResult:
    """Timing stats for one executed case."""

    name: str
    group: str
    warmup: int
    repeat: int
    times_s: list[float] = field(default_factory=list)

    @property
    def min_s(self) -> float:
        return min(self.times_s)

    @property
    def median_s(self) -> float:
        return median(self.times_s)

    @property
    def mean_s(self) -> float:
        return mean(self.times_s)

    @property
    def stddev_s(self) -> float:
        return stdev(self.times_s) if len(self.times_s) > 1 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "min_s": self.min_s,
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "stddev_s": self.stddev_s,
            "times_s": list(self.times_s),
        }


def run_case(case: BenchmarkCase, fast: bool = False,
             clock=time.perf_counter) -> CaseResult:
    """Set up and time one case under the run's discipline."""
    warmup = case.warmup if case.warmup is not None else (
        FAST_WARMUP if fast else DEFAULT_WARMUP)
    repeat = case.repeat if case.repeat is not None else (
        FAST_REPEAT if fast else DEFAULT_REPEAT)
    if repeat < 1:
        raise BenchmarkError(
            f"benchmark {case.name!r} needs repeat >= 1, got {repeat}"
        )
    kernel = case.factory()
    if not callable(kernel):
        raise BenchmarkError(
            f"benchmark {case.name!r} factory must return a callable "
            f"kernel, got {type(kernel).__name__}"
        )
    for _ in range(warmup):
        kernel()
    result = CaseResult(name=case.name, group=case.group,
                        warmup=warmup, repeat=repeat)
    for _ in range(repeat):
        start = clock()
        kernel()
        result.times_s.append(clock() - start)
    return result


def run_benchmarks(cases: Iterable[BenchmarkCase], fast: bool = False,
                   progress: Callable[[str], None] | None = None) -> dict:
    """Run ``cases`` and assemble the versioned result document."""
    results = []
    for case in cases:
        if progress is not None:
            progress(case.name)
        results.append(run_case(case, fast=fast).to_dict())
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "fast": fast,
        "environment": environment_fingerprint(),
        "results": results,
    }


_RESULT_KEYS = {"name", "group", "warmup", "repeat",
                "min_s", "median_s", "mean_s", "stddev_s", "times_s"}
_ENV_KEYS = {"python", "implementation", "platform", "machine",
             "cpu_count", "git_sha"}


def validate_results(document: dict) -> None:
    """Raise :class:`BenchmarkError` unless ``document`` fits the schema."""

    def fail(why: str):
        raise BenchmarkError(f"invalid benchmark results: {why}")

    if not isinstance(document, dict):
        fail("not a JSON object")
    if document.get("schema_version") != SCHEMA_VERSION:
        fail(f"schema_version {document.get('schema_version')!r} != "
             f"{SCHEMA_VERSION}")
    if document.get("schema") != SCHEMA_NAME:
        fail(f"schema {document.get('schema')!r} != {SCHEMA_NAME!r}")
    environment = document.get("environment")
    if not isinstance(environment, dict) or not _ENV_KEYS <= set(environment):
        fail(f"environment must carry keys {sorted(_ENV_KEYS)}")
    results = document.get("results")
    if not isinstance(results, list):
        fail("results must be a list")
    seen: set[str] = set()
    for entry in results:
        if not isinstance(entry, dict) or not _RESULT_KEYS <= set(entry):
            fail(f"result entry must carry keys {sorted(_RESULT_KEYS)}")
        if entry["name"] in seen:
            fail(f"duplicate result name {entry['name']!r}")
        seen.add(entry["name"])
        times = entry["times_s"]
        if (not isinstance(times, list) or len(times) != entry["repeat"]
                or not all(isinstance(t, (int, float)) and t >= 0
                           and math.isfinite(t) for t in times)):
            fail(f"times_s malformed for {entry['name']!r}")
        if abs(entry["min_s"] - min(times)) > 1e-12:
            fail(f"min_s inconsistent for {entry['name']!r}")

__all__ = [
    "BenchmarkCase",
    "BenchmarkError",
    "CaseResult",
    "DEFAULT_REPEAT",
    "DEFAULT_WARMUP",
    "FAST_REPEAT",
    "FAST_WARMUP",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "benchmark",
    "clear_registry",
    "environment_fingerprint",
    "get_case",
    "load_directory",
    "registered_cases",
    "run_benchmarks",
    "run_case",
    "validate_results",
]
