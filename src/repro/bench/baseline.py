"""Baseline comparison and regression gating for benchmark results.

A *baseline* is simply a committed result document (see
:mod:`repro.bench.harness`) under ``benchmarks/baselines/``.  The gate
compares each current case's **min** time against the baseline's —
min-of-N is the noise-robust statistic; medians wobble on small N —
and flags a regression when ``current_min > tolerance * baseline_min``.

Baselines record the environment fingerprint of the machine that
produced them.  When the current machine's fingerprint differs, the
comparison still runs but is advisory by nature: either gate with a
generous tolerance (CI smoke uses 2x) or pass ``advisory=True`` to
downgrade regressions to warnings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.harness import BenchmarkError, validate_results

#: Default regression gate: current min may be up to 1.5x baseline min.
DEFAULT_TOLERANCE = 1.5

#: Fingerprint keys that identify a machine (git SHA moves every
#: commit and is deliberately excluded).
_MACHINE_KEYS = ("python", "implementation", "platform", "machine",
                 "cpu_count")


@dataclass(slots=True)
class Comparison:
    """One case's fate against the baseline."""

    name: str
    status: str  # "ok" | "regression" | "improvement" | "new" | "missing"
    baseline_min_s: float | None
    current_min_s: float | None
    ratio: float | None

    def describe(self) -> str:
        if self.status == "new":
            return f"{self.name}: new (no baseline entry)"
        if self.status == "missing":
            return f"{self.name}: in baseline but not in this run"
        return (f"{self.name}: {self.current_min_s:.6f}s vs baseline "
                f"{self.baseline_min_s:.6f}s ({self.ratio:.2f}x) "
                f"-> {self.status}")


def default_baseline_path(bench_dir: str | Path, fast: bool) -> Path:
    """Where the committed baseline for this mode lives."""
    mode = "fast" if fast else "full"
    return Path(bench_dir) / "baselines" / f"bench-{mode}.json"


def load_baseline(path: str | Path) -> dict:
    """Read and schema-validate a baseline document."""
    baseline_path = Path(path)
    if not baseline_path.is_file():
        raise BenchmarkError(f"baseline not found: {baseline_path}")
    with open(baseline_path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(
                f"baseline {baseline_path} is not valid JSON: {exc}"
            ) from None
    validate_results(document)
    return document


def write_results(document: dict, path: str | Path) -> None:
    """Schema-validate and write a result document as pretty JSON."""
    validate_results(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def same_machine(current_env: dict, baseline_env: dict) -> bool:
    """Do the two fingerprints describe comparable hardware?"""
    return all(current_env.get(k) == baseline_env.get(k)
               for k in _MACHINE_KEYS)


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> list[Comparison]:
    """Pair up the two documents' cases; one :class:`Comparison` each."""
    if tolerance <= 0:
        raise BenchmarkError(f"tolerance must be positive, got {tolerance}")
    baseline_by_name = {r["name"]: r for r in baseline["results"]}
    comparisons: list[Comparison] = []
    for result in current["results"]:
        entry = baseline_by_name.pop(result["name"], None)
        if entry is None:
            comparisons.append(Comparison(
                name=result["name"], status="new",
                baseline_min_s=None, current_min_s=result["min_s"],
                ratio=None,
            ))
            continue
        ratio = (result["min_s"] / entry["min_s"]
                 if entry["min_s"] > 0 else float("inf"))
        if ratio > tolerance:
            status = "regression"
        elif ratio < 1.0 / tolerance:
            status = "improvement"
        else:
            status = "ok"
        comparisons.append(Comparison(
            name=result["name"], status=status,
            baseline_min_s=entry["min_s"], current_min_s=result["min_s"],
            ratio=ratio,
        ))
    for name in baseline_by_name:
        comparisons.append(Comparison(
            name=name, status="missing",
            baseline_min_s=baseline_by_name[name]["min_s"],
            current_min_s=None, ratio=None,
        ))
    return comparisons


def regressions(comparisons: list[Comparison]) -> list[Comparison]:
    """The comparisons that should fail the gate."""
    return [c for c in comparisons if c.status == "regression"]

__all__ = [
    "Comparison",
    "DEFAULT_TOLERANCE",
    "compare",
    "default_baseline_path",
    "load_baseline",
    "regressions",
    "same_machine",
    "write_results",
]
