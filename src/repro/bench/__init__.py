"""Unified benchmark harness: registry, timing, baselines, trajectory.

The measurement backbone every perf PR reports through.  The
``benchmarks/bench_*.py`` scripts register their measured sections
with :func:`benchmark`; ``repro bench run`` discovers them
(:func:`load_directory`), times them under a fixed warmup/repeat
discipline, emits schema-versioned JSON with an environment
fingerprint, and gates against the committed baselines under
``benchmarks/baselines/``.
"""

from repro.bench.baseline import (
    DEFAULT_TOLERANCE,
    Comparison,
    compare,
    default_baseline_path,
    load_baseline,
    regressions,
    same_machine,
    write_results,
)
from repro.bench.harness import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchmarkCase,
    BenchmarkError,
    CaseResult,
    benchmark,
    clear_registry,
    environment_fingerprint,
    get_case,
    load_directory,
    registered_cases,
    run_benchmarks,
    run_case,
    validate_results,
)

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "BenchmarkCase",
    "BenchmarkError",
    "CaseResult",
    "benchmark",
    "clear_registry",
    "environment_fingerprint",
    "get_case",
    "load_directory",
    "registered_cases",
    "run_benchmarks",
    "run_case",
    "validate_results",
    "DEFAULT_TOLERANCE",
    "Comparison",
    "compare",
    "default_baseline_path",
    "load_baseline",
    "regressions",
    "same_machine",
    "write_results",
]
