"""Command-line interface: ``python -m repro <command>``.

Five commands cover the library's day-one workflows:

* ``report [--fast]`` — regenerate the full reproduction report
  (every paper table/figure plus the extension experiments); with
  ``--metrics-out`` it also dumps a JSONL metrics snapshot,
* ``simulate`` — run one trip under one policy and print its metrics
  (optionally dumping the per-tick series as CSV),
* ``scenario`` — run a fleet scenario and print message accounting,
* ``stats`` — run a fleet scenario under a live metrics registry and
  tracer, issue range queries against the running database, and emit
  the metric snapshot (Prometheus text and/or JSONL, plus an optional
  span trace),
* ``query`` — execute an MQL statement against a JSON database
  snapshot (see :mod:`repro.dbms.persistence`).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import TextIO

from repro.core.policies import make_policy, policy_names
from repro.dbms.mql import execute as execute_mql
from repro.dbms.persistence import load_database
from repro.errors import ReproError
from repro.reporting.export import rows_to_csv, write_csv
from repro.sim.engine import simulate_trip
from repro.sim.speed_curves import (
    CityCurve,
    HighwayCurve,
    RushHourCurve,
    SpeedCurve,
    TraceCurve,
    TrafficJamCurve,
)
from repro.sim.trip import Trip

_CURVES = {
    "highway": HighwayCurve,
    "city": CityCurve,
    "jam": TrafficJamCurve,
    "rush-hour": RushHourCurve,
}


def _build_curve(kind: str, duration: float, seed: int,
                 trace: str | None) -> SpeedCurve:
    if trace is not None:
        return TraceCurve.from_csv(trace)
    try:
        constructor = _CURVES[kind]
    except KeyError:
        raise ReproError(
            f"unknown curve kind {kind!r}; known: {sorted(_CURVES)}"
        ) from None
    return constructor(duration, random.Random(seed))


def _cmd_report(args: argparse.Namespace, out: TextIO) -> int:
    from repro.experiments.runner import run_all

    if args.metrics_out is not None:
        from repro.obs import use_registry, write_jsonl

        with use_registry() as registry:
            run_all(fast=args.fast, out=out, jobs=args.jobs)
        write_jsonl(registry, args.metrics_out)
        print(f"metrics snapshot written to {args.metrics_out}", file=out)
    else:
        run_all(fast=args.fast, out=out, jobs=args.jobs)
    return 0


def _cmd_simulate(args: argparse.Namespace, out: TextIO) -> int:
    # Seed the global RNG too: --seed must fully determinize the run
    # even for components that draw from the module-level generator.
    random.seed(args.seed)
    curve = _build_curve(args.curve, args.duration, args.seed, args.trace)
    trip = Trip.synthetic(curve, route_id="cli")
    policy = make_policy(args.policy, args.cost)
    record_series = args.series_csv is not None
    if args.jobs > 1 and not record_series:
        # A single trip cannot fan out, but the cached tick grid takes
        # the executor's fast path — same numbers, less wall clock.
        from repro.exec import TickGrid
        from repro.sim.engine import PolicySimulation

        grid = TickGrid.build(trip, args.dt)
        result = PolicySimulation(
            trip, policy, dt=args.dt, grid=grid
        ).run()
    else:
        result = simulate_trip(
            trip, policy, dt=args.dt, record_series=record_series
        )
    m = result.metrics
    print(f"policy            : {m.policy} (C = {m.update_cost})", file=out)
    print(f"trip              : {curve.kind}, {m.duration:.1f} min, "
          f"{trip.total_distance:.2f} mi", file=out)
    print(f"updates sent      : {m.num_updates}", file=out)
    print(f"total cost        : {m.total_cost:.3f}", file=out)
    print(f"avg deviation     : {m.avg_deviation:.3f} mi", file=out)
    print(f"max deviation     : {m.max_deviation:.3f} mi", file=out)
    print(f"avg uncertainty   : {m.avg_uncertainty:.3f} mi", file=out)
    print(f"update times (min): "
          f"{[round(u.time, 2) for u in result.updates]}", file=out)
    if args.series_csv is not None:
        series = result.series
        rows = list(zip(series.times, series.deviations,
                        series.uncertainty_bounds))
        write_csv(
            args.series_csv,
            rows_to_csv(["time", "deviation", "uncertainty_bound"], rows),
        )
        print(f"series written to {args.series_csv}", file=out)
    return 0


def _build_scenario(name: str, size: int, duration: float, seed: int):
    from repro.workloads import (
        battlefield_scenario,
        taxi_fleet_scenario,
        trucking_scenario,
    )

    builders = {
        "taxi": taxi_fleet_scenario,
        "trucking": trucking_scenario,
        "battlefield": battlefield_scenario,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; known: {sorted(builders)}"
        ) from None
    size_param = {
        "taxi": "num_taxis", "trucking": "num_trucks",
        "battlefield": "num_units",
    }[name]
    return builder(**{
        "duration": duration, "seed": seed, size_param: size,
    })


def _cmd_scenario(args: argparse.Namespace, out: TextIO) -> int:
    scenario = _build_scenario(args.name, args.size, args.duration, args.seed)
    counts = scenario.fleet.run()
    total = sum(counts.values())
    print(f"scenario      : {scenario.name}", file=out)
    print(f"objects       : {len(scenario.database)}", file=out)
    print(f"duration      : {args.duration} min", file=out)
    print(f"messages      : {total} "
          f"({total / len(counts):.2f} per object)", file=out)
    print(f"comm. cost    : {scenario.database.communication_cost():.1f}",
          file=out)
    if args.snapshot is not None:
        from repro.dbms.persistence import save_database

        save_database(scenario.database, args.snapshot)
        print(f"snapshot written to {args.snapshot}", file=out)
    return 0


def _cmd_stats(args: argparse.Namespace, out: TextIO) -> int:
    """Run a fleet scenario under full observability and emit telemetry."""
    from repro.obs import (
        Tracer,
        jsonl_snapshot,
        prometheus_text,
        use_registry,
        use_tracer,
        write_jsonl,
        write_prometheus,
    )
    from repro.workloads.query_workloads import polygon_query_workload

    random.seed(args.seed)
    tracer = Tracer()
    with use_registry() as registry, use_tracer(tracer):
        scenario = _build_scenario(
            args.name, args.size, args.duration, args.seed
        )
        polygons = polygon_query_workload(
            scenario.network, random.Random(args.seed + 1), count=args.queries
        )
        engine = None
        if args.batch:
            # Batched serving mode: run the fleet, then answer the
            # whole query workload in one BatchQueryEngine pass (shared
            # R-tree traversal + uncertainty cache) against the final
            # database state.
            from repro.dbms.batch import BatchQueryEngine, RangeQuery

            counts = scenario.fleet.run()
            engine = BatchQueryEngine(scenario.database)
            t_end = scenario.database.clock_time
            engine.run([RangeQuery(polygon, t_end) for polygon in polygons])
            queries_issued = len(polygons)
        else:
            # Spread the query workload evenly over the run's ticks so
            # the latency histograms sample a live, changing database.
            num_ticks = max(int(args.duration / scenario.fleet.dt + 1e-9), 1)
            stride = max(num_ticks // args.queries, 1)
            progress = {"tick": 0, "query": 0}

            def on_tick(t: float) -> None:
                progress["tick"] += 1
                if (progress["tick"] % stride == 0
                        and progress["query"] < len(polygons)):
                    scenario.database.range_query(
                        polygons[progress["query"]], t
                    )
                    progress["query"] += 1

            counts = scenario.fleet.run(on_tick=on_tick)
            queries_issued = progress["query"]

    total = sum(counts.values())
    print(f"# scenario {scenario.name}: {len(scenario.database)} objects, "
          f"{args.duration} min, {total} update messages, "
          f"{queries_issued} range queries"
          + (" (batched)" if args.batch else ""), file=out)
    if engine is not None:
        print(f"# batch engine: uncertainty-cache hit rate "
              f"{engine.hit_rate():.3f} over {queries_issued} queries",
              file=out)
    if args.format in ("prom", "both"):
        print(prometheus_text(registry), file=out, end="")
    if args.format in ("jsonl", "both"):
        print(jsonl_snapshot(registry), file=out, end="")
    if args.prom_out is not None:
        write_prometheus(registry, args.prom_out)
        print(f"# prometheus snapshot written to {args.prom_out}", file=out)
    if args.jsonl_out is not None:
        write_jsonl(registry, args.jsonl_out)
        print(f"# jsonl snapshot written to {args.jsonl_out}", file=out)
    if args.trace_out is not None:
        exported = tracer.export_jsonl(args.trace_out)
        print(f"# {exported} spans written to {args.trace_out}", file=out)
    return 0


def _cmd_query(args: argparse.Namespace, out: TextIO) -> int:
    database = load_database(args.snapshot)
    answer = execute_mql(database, args.statement)
    if isinstance(answer, list):
        for entry in answer:
            marker = "certain" if entry.certain else "maybe"
            print(f"{entry.object_id}: distance in "
                  f"[{entry.min_distance:.3f}, {entry.max_distance:.3f}] mi "
                  f"({marker})", file=out)
        return 0
    if hasattr(answer, "may"):
        print(f"must: {sorted(answer.must)}", file=out)
        print(f"may : {sorted(answer.may - answer.must)}", file=out)
        print(f"examined {answer.examined} of {len(database)} objects",
              file=out)
    elif hasattr(answer, "position"):
        print(f"position ({answer.position.x:.4f}, "
              f"{answer.position.y:.4f}) +/- {answer.error_bound:.4f} mi",
              file=out)
    elif answer is None:
        print("never (within the horizon)", file=out)
    else:
        print(f"t = {answer:.3f} min", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Moving-objects database (Wolfson et al., ICDE 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run the reproduction report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--metrics-out", default=None,
                        help="write a JSONL metrics snapshot of the run")
    report.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep-shaped "
                             "experiments (numbers are identical for "
                             "any value)")
    report.set_defaults(func=_cmd_report)

    simulate = sub.add_parser("simulate", help="simulate one trip")
    simulate.add_argument("--policy", default="ail",
                          choices=sorted(policy_names()))
    simulate.add_argument("--cost", type=float, default=5.0,
                          help="update cost C")
    simulate.add_argument("--curve", default="city",
                          choices=sorted(_CURVES))
    simulate.add_argument("--trace", default=None,
                          help="CSV speed trace (overrides --curve)")
    simulate.add_argument("--duration", type=float, default=60.0)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--dt", type=float, default=1.0 / 60.0)
    simulate.add_argument("--series-csv", default=None,
                          help="write per-tick series to this CSV path")
    simulate.add_argument("--jobs", type=int, default=1,
                          help="enable the cached-grid fast path "
                               "(>1; numbers are identical)")
    simulate.set_defaults(func=_cmd_simulate)

    scenario = sub.add_parser("scenario", help="run a fleet scenario")
    scenario.add_argument("--name", default="taxi",
                          choices=("taxi", "trucking", "battlefield"))
    scenario.add_argument("--size", type=int, default=10)
    scenario.add_argument("--duration", type=float, default=15.0)
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--snapshot", default=None,
                          help="save the final database as JSON")
    scenario.set_defaults(func=_cmd_scenario)

    stats = sub.add_parser(
        "stats", help="run a fleet scenario and emit a metrics snapshot"
    )
    stats.add_argument("--name", default="taxi",
                       choices=("taxi", "trucking", "battlefield"))
    stats.add_argument("--size", type=int, default=10)
    stats.add_argument("--duration", type=float, default=15.0)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--queries", type=int, default=20,
                       help="range queries issued against the live database")
    stats.add_argument("--batch", action="store_true",
                       help="answer the query workload through the batched "
                            "query engine (shared index traversal + "
                            "uncertainty cache) after the run")
    stats.add_argument("--format", default="prom",
                       choices=("prom", "jsonl", "both"),
                       help="snapshot format(s) printed to stdout")
    stats.add_argument("--prom-out", default=None,
                       help="write the Prometheus-text snapshot to this path")
    stats.add_argument("--jsonl-out", default=None,
                       help="write the JSONL snapshot to this path")
    stats.add_argument("--trace-out", default=None,
                       help="write the span trace (JSONL) to this path")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="run MQL against a snapshot")
    query.add_argument("snapshot", help="JSON snapshot path")
    query.add_argument("statement", help="MQL statement")
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
