"""Command-line interface: ``python -m repro <command>``.

Six commands cover the library's day-one workflows:

* ``report [--fast]`` — regenerate the full reproduction report
  (every paper table/figure plus the extension experiments); with
  ``--metrics-out`` it also dumps a JSONL metrics snapshot,
* ``simulate`` — run one trip under one policy and print its metrics
  (optionally dumping the per-tick series as CSV),
* ``scenario`` — run a fleet scenario and print message accounting,
* ``stats`` — run a fleet scenario under a live metrics registry and
  tracer, issue range queries against the running database, and emit
  the metric snapshot (Prometheus text and/or JSONL, plus an optional
  span trace),
* ``query`` — execute an MQL statement against a JSON database
  snapshot (see :mod:`repro.dbms.persistence`),
* ``bench`` — the unified benchmark harness (:mod:`repro.bench`):
  ``list`` the registered cases, ``run`` them with baseline regression
  gating and ``BENCH_<group>.json`` trajectory artifacts,
* ``trace`` — the workload flight recorder (:mod:`repro.trace`):
  ``record`` a scenario + query workload as schema-versioned JSONL,
  ``replay`` it against a fresh database verifying byte-identical
  answer digests, ``summary`` its event counts,
* ``monitor`` — the live telemetry service (:mod:`repro.obs.live`):
  ``serve`` a scenario with sliding-window metrics over HTTP
  (``/metrics``, ``/health``, ``/snapshot``) while appending collector
  snapshots, ``check`` a collector file offline against an SLO spec
  (verdicts byte-identical to the live ``/health`` bodies), ``tail``
  a collector file as a human-readable table.

``report``, ``scenario``, and ``stats`` accept ``--profile``, which
records the run's spans and prints a flame summary (per-span-name
self/total time) whose self-time column partitions the root span's
wall clock.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from contextlib import contextmanager, nullcontext
from typing import Iterator, TextIO

from repro.core.policies import make_policy, policy_names
from repro.dbms.mql import execute as execute_mql
from repro.dbms.persistence import load_database
from repro.errors import ReproError
from repro.reporting.export import rows_to_csv, write_csv
from repro.sim.engine import simulate_trip
from repro.sim.speed_curves import (
    CityCurve,
    HighwayCurve,
    RushHourCurve,
    SpeedCurve,
    TraceCurve,
    TrafficJamCurve,
)
from repro.sim.trip import Trip

_CURVES = {
    "highway": HighwayCurve,
    "city": CityCurve,
    "jam": TrafficJamCurve,
    "rush-hour": RushHourCurve,
}


def _build_curve(kind: str, duration: float, seed: int,
                 trace: str | None) -> SpeedCurve:
    if trace is not None:
        return TraceCurve.from_csv(trace)
    try:
        constructor = _CURVES[kind]
    except KeyError:
        raise ReproError(
            f"unknown curve kind {kind!r}; known: {sorted(_CURVES)}"
        ) from None
    return constructor(duration, random.Random(seed))


@contextmanager
def _profiled(enabled: bool, root_name: str, out: TextIO) -> Iterator[None]:
    """Record spans under a root span and print the flame summary.

    A no-op when ``enabled`` is false.  The root span wraps the whole
    block, so every library span nests under it and the summary's
    self times partition the root's wall clock.
    """
    if not enabled:
        yield
        return
    from repro.obs import Tracer, print_flame_summary, use_tracer

    tracer = Tracer(max_spans=1_000_000)
    with use_tracer(tracer):
        with tracer.span(root_name):
            yield
    print_flame_summary(tracer, out)


def _cmd_report(args: argparse.Namespace, out: TextIO) -> int:
    from contextlib import ExitStack

    from repro.experiments.runner import run_all

    telemetry = None
    spec = None
    with _profiled(args.profile, "report", out):
        with ExitStack() as stack:
            registry = None
            recorder = None
            if args.live_port is not None or args.slo is not None:
                # Report runs on the wall clock, so the live windows do
                # too: 60 s fast / 12 min slow burn windows.
                from repro.obs.live import (
                    LiveTelemetry,
                    SLOSpec,
                    load_slo,
                    use_live,
                )

                telemetry = LiveTelemetry(
                    fast_window=60.0, slow_window=720.0, bucket=5.0,
                    clock=time.monotonic,
                )
                stack.enter_context(use_live(telemetry))
                spec = (load_slo(args.slo) if args.slo is not None
                        else SLOSpec(slos=()))
            if args.metrics_out is not None or args.live_port is not None:
                from repro.obs import use_registry, write_jsonl

                registry = stack.enter_context(use_registry())
            if args.live_port is not None:
                from repro.obs.live import LiveServer

                server = LiveServer(
                    registry, telemetry, spec, port=args.live_port
                )
                stack.callback(server.stop)
                print(f"# live endpoint: http://127.0.0.1:"
                      f"{server.start()} (/metrics /health /snapshot)",
                      file=out, flush=True)
            if args.trace_out is not None:
                from repro.trace import use_recorder

                recorder = stack.enter_context(use_recorder())
            run_all(fast=args.fast, out=out, jobs=args.jobs,
                    shards=args.shards)
        if registry is not None and args.metrics_out is not None:
            write_jsonl(registry, args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}",
                  file=out)
        if telemetry is not None and args.slo is not None:
            from repro.obs.live import evaluate, verdict_json

            verdict = evaluate(spec, telemetry.window_state())
            print(f"# slo status: {verdict['status']}", file=out)
            print(verdict_json(verdict), file=out)
        if recorder is not None:
            from repro.trace import write_trace

            count = write_trace(recorder, args.trace_out)
            print(f"workload trace ({count} events) written to "
                  f"{args.trace_out}", file=out)
    return 0


def _cmd_simulate(args: argparse.Namespace, out: TextIO) -> int:
    # Seed the global RNG too: --seed must fully determinize the run
    # even for components that draw from the module-level generator.
    random.seed(args.seed)
    curve = _build_curve(args.curve, args.duration, args.seed, args.trace)
    trip = Trip.synthetic(curve, route_id="cli")
    policy = make_policy(args.policy, args.cost)
    record_series = args.series_csv is not None
    if args.jobs > 1 and not record_series:
        # A single trip cannot fan out, but the cached tick grid takes
        # the executor's fast path — same numbers, less wall clock.
        from repro.exec import TickGrid
        from repro.sim.engine import PolicySimulation

        grid = TickGrid.build(trip, args.dt)
        result = PolicySimulation(
            trip, policy, dt=args.dt, grid=grid
        ).run()
    else:
        result = simulate_trip(
            trip, policy, dt=args.dt, record_series=record_series
        )
    m = result.metrics
    print(f"policy            : {m.policy} (C = {m.update_cost})", file=out)
    print(f"trip              : {curve.kind}, {m.duration:.1f} min, "
          f"{trip.total_distance:.2f} mi", file=out)
    print(f"updates sent      : {m.num_updates}", file=out)
    print(f"total cost        : {m.total_cost:.3f}", file=out)
    print(f"avg deviation     : {m.avg_deviation:.3f} mi", file=out)
    print(f"max deviation     : {m.max_deviation:.3f} mi", file=out)
    print(f"avg uncertainty   : {m.avg_uncertainty:.3f} mi", file=out)
    print(f"update times (min): "
          f"{[round(u.time, 2) for u in result.updates]}", file=out)
    if args.series_csv is not None:
        series = result.series
        rows = list(zip(series.times, series.deviations,
                        series.uncertainty_bounds))
        write_csv(
            args.series_csv,
            rows_to_csv(["time", "deviation", "uncertainty_bound"], rows),
        )
        print(f"series written to {args.series_csv}", file=out)
    return 0


def _shard_factory(shards: int | None, shard_plan: str | None):
    """A scenario ``database_factory`` building a sharded facade.

    ``--shard-plan`` loads a saved partitioning verbatim; ``--shards``
    lays a uniform grid over the scenario network's extent.
    """
    if shards is not None and shard_plan is not None:
        raise ReproError("--shards and --shard-plan are mutually exclusive")
    if shards is not None and shards < 1:
        raise ReproError(f"--shards must be >= 1, got {shards}")
    from repro.geometry.bbox import Rect2D
    from repro.index.timespace import TimeSpaceIndex
    from repro.shard import ShardedDatabase, load_plan, uniform_grid_for

    def factory(network):
        if shard_plan is not None:
            partitioning = load_plan(shard_plan)
        else:
            partitioning = uniform_grid_for(
                Rect2D(*network.bounding_extent()), shards
            )
        return ShardedDatabase(partitioning, index_factory=TimeSpaceIndex)

    return factory


def _batch_engine(database, jobs: int = 1):
    """The batch engine matching the database flavour."""
    if hasattr(database, "shards_for_window"):
        from repro.shard import ShardedBatchQueryEngine

        return ShardedBatchQueryEngine(database, jobs=jobs)
    from repro.dbms.batch import BatchQueryEngine

    return BatchQueryEngine(database)


def _build_scenario(name: str, size: int, duration: float, seed: int,
                    shards: int | None = None,
                    shard_plan: str | None = None):
    from repro.workloads import (
        battlefield_scenario,
        taxi_fleet_scenario,
        trucking_scenario,
    )

    builders = {
        "taxi": taxi_fleet_scenario,
        "trucking": trucking_scenario,
        "battlefield": battlefield_scenario,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; known: {sorted(builders)}"
        ) from None
    size_param = {
        "taxi": "num_taxis", "trucking": "num_trucks",
        "battlefield": "num_units",
    }[name]
    kwargs = {"duration": duration, "seed": seed, size_param: size}
    if shards is not None or shard_plan is not None:
        kwargs["database_factory"] = _shard_factory(shards, shard_plan)
    return builder(**kwargs)


def _cmd_scenario(args: argparse.Namespace, out: TextIO) -> int:
    with _profiled(args.profile, "scenario", out):
        scenario = _build_scenario(
            args.name, args.size, args.duration, args.seed
        )
        counts = scenario.fleet.run()
        total = sum(counts.values())
        print(f"scenario      : {scenario.name}", file=out)
        print(f"objects       : {len(scenario.database)}", file=out)
        print(f"duration      : {args.duration} min", file=out)
        print(f"messages      : {total} "
              f"({total / len(counts):.2f} per object)", file=out)
        print(f"comm. cost    : "
              f"{scenario.database.communication_cost():.1f}", file=out)
        if args.snapshot is not None:
            from repro.dbms.persistence import save_database

            save_database(scenario.database, args.snapshot)
            print(f"snapshot written to {args.snapshot}", file=out)
    return 0


@contextmanager
def _served(registry, telemetry, spec, port: int | None,
            out: TextIO) -> Iterator[None]:
    """Serve the live endpoint for the enclosed block (no-op sans port)."""
    if port is None or telemetry is None:
        yield
        return
    from repro.obs.live import LiveServer

    server = LiveServer(registry, telemetry, spec, port=port)
    bound = server.start()
    print(f"# live endpoint: http://127.0.0.1:{bound} "
          f"(/metrics /health /snapshot)", file=out, flush=True)
    try:
        yield
    finally:
        server.stop()


def _cmd_stats(args: argparse.Namespace, out: TextIO) -> int:
    """Run a fleet scenario under full observability and emit telemetry."""
    from repro.obs import (
        Tracer,
        jsonl_snapshot,
        prometheus_text,
        use_registry,
        use_tracer,
        write_jsonl,
        write_prometheus,
    )
    from repro.workloads.query_workloads import polygon_query_workload

    random.seed(args.seed)
    tracer = Tracer(max_spans=1_000_000 if args.profile else 100_000)
    root_span = (
        tracer.span("stats")  # repro: noqa[RPR501] entered by the `with` below; the nullcontext arm keeps one code path
        if args.profile else nullcontext()
    )
    recorder = None
    record_ctx = nullcontext()
    if args.trace_out is not None:
        from repro.trace import TraceRecorder, use_recorder

        recorder = TraceRecorder(meta={
            "command": "stats", "scenario": args.name, "size": args.size,
            "duration": args.duration, "seed": args.seed,
        })
        record_ctx = use_recorder(recorder)
    telemetry = None
    spec = None
    live_ctx = nullcontext()
    if args.live_port is not None or args.slo is not None:
        from repro.obs.live import (
            LiveTelemetry,
            SLOSpec,
            load_slo,
            use_live,
        )

        telemetry = LiveTelemetry()
        live_ctx = use_live(telemetry)
        spec = (load_slo(args.slo) if args.slo is not None
                else SLOSpec(slos=()))
    with use_registry() as registry, use_tracer(tracer), record_ctx, \
            root_span, live_ctx, \
            _served(registry, telemetry, spec, args.live_port, out):
        scenario = _build_scenario(
            args.name, args.size, args.duration, args.seed,
            shards=args.shards, shard_plan=args.shard_plan,
        )
        polygons = polygon_query_workload(
            scenario.network, random.Random(args.seed + 1), count=args.queries
        )
        engine = None
        if args.batch:
            # Batched serving mode: run the fleet, then answer the
            # whole query workload in one batch pass (shared R-tree
            # traversal + uncertainty cache) against the final
            # database state.  Sharded databases get the fan-out
            # engine, which parallelizes over --jobs.
            from repro.dbms.batch import RangeQuery

            tick_hook = (telemetry.advance if telemetry is not None
                         else None)
            counts = scenario.fleet.run(on_tick=tick_hook)
            engine = _batch_engine(scenario.database, jobs=args.jobs)
            t_end = scenario.database.clock_time
            engine.run([RangeQuery(polygon, t_end) for polygon in polygons])
            queries_issued = len(polygons)
        else:
            # Spread the query workload evenly over the run's ticks so
            # the latency histograms sample a live, changing database.
            num_ticks = max(int(args.duration / scenario.fleet.dt + 1e-9), 1)
            stride = max(num_ticks // args.queries, 1)
            progress = {"tick": 0, "query": 0}

            def on_tick(t: float) -> None:
                if telemetry is not None:
                    telemetry.advance(t)
                progress["tick"] += 1
                if (progress["tick"] % stride == 0
                        and progress["query"] < len(polygons)):
                    scenario.database.range_query(
                        polygons[progress["query"]], t
                    )
                    progress["query"] += 1

            counts = scenario.fleet.run(on_tick=on_tick)
            queries_issued = progress["query"]

        if args.jobs > 1:
            # Exercise the parallel executor so the emitted snapshot
            # demonstrates merged per-worker telemetry (the metrics
            # carry worker="chunk-N" labels, the span tree the adopted
            # worker spans).
            from repro.exec import SweepExecutor
            from repro.experiments.sweep import SweepSpec

            SweepExecutor(jobs=args.jobs).run(SweepSpec(
                policy_names=("dl", "ail"), update_costs=(2.0, 5.0),
                num_curves=max(args.jobs, 2),
                duration=min(args.duration, 10.0), seed=args.seed,
            ))
        if hasattr(scenario.database, "publish_shard_gauges"):
            scenario.database.publish_shard_gauges()
        if recorder is not None:
            from repro.trace import record_index_digest

            record_index_digest(scenario.database)

    total = sum(counts.values())
    print(f"# scenario {scenario.name}: {len(scenario.database)} objects, "
          f"{args.duration} min, {total} update messages, "
          f"{queries_issued} range queries"
          + (" (batched)" if args.batch else ""), file=out)
    if engine is not None:
        print(f"# batch engine: uncertainty-cache hit rate "
              f"{engine.hit_rate():.3f} over {queries_issued} queries",
              file=out)
    if args.format in ("prom", "both"):
        print(prometheus_text(registry), file=out, end="")
    if args.format in ("jsonl", "both"):
        print(jsonl_snapshot(registry), file=out, end="")
    if args.prom_out is not None:
        write_prometheus(registry, args.prom_out)
        print(f"# prometheus snapshot written to {args.prom_out}", file=out)
    if args.jsonl_out is not None:
        write_jsonl(registry, args.jsonl_out)
        print(f"# jsonl snapshot written to {args.jsonl_out}", file=out)
    if args.spans_out is not None:
        exported = tracer.export_jsonl(args.spans_out)
        print(f"# {exported} spans written to {args.spans_out}", file=out)
    if recorder is not None:
        from repro.trace import write_trace

        count = write_trace(recorder, args.trace_out)
        print(f"# workload trace ({count} events) written to "
              f"{args.trace_out}", file=out)
    if telemetry is not None and args.slo is not None:
        from repro.obs.live import evaluate, verdict_json

        verdict = evaluate(spec, telemetry.window_state())
        print(f"# slo status: {verdict['status']}", file=out)
        print(verdict_json(verdict), file=out)
    if args.profile:
        from repro.obs import print_flame_summary

        print_flame_summary(tracer, out)
    return 0


def _parse_spike(spec: str | None) -> tuple[float, float] | None:
    """``--spike START:SECONDS`` -> (sim start time, injected latency)."""
    if spec is None:
        return None
    try:
        start_text, value_text = spec.split(":", 1)
        return float(start_text), float(value_text)
    except ValueError:
        raise ReproError(
            f"--spike must be START:SECONDS (e.g. 10:0.5), got {spec!r}"
        ) from None


def _cmd_monitor_serve(args: argparse.Namespace, out: TextIO) -> int:
    """Run a scenario under live telemetry and serve it over HTTP."""
    from repro.dbms.batch import RangeQuery
    from repro.obs import use_registry
    from repro.obs.live import (
        LiveCollector,
        LiveServer,
        LiveTelemetry,
        SLOSpec,
        evaluate,
        load_slo,
        use_live,
        verdict_json,
    )
    from repro.workloads.query_workloads import polygon_query_workload

    spec = load_slo(args.slo) if args.slo is not None else SLOSpec(slos=())
    spike = _parse_spike(args.spike)
    random.seed(args.seed)
    telemetry = LiveTelemetry(
        fast_window=args.fast_window, slow_window=args.slow_window,
        bucket=args.bucket,
    )
    collector = None
    if args.collector_out is not None:
        collector = LiveCollector(
            telemetry, args.collector_out, interval=args.interval
        )
        collector.open()
    with use_registry() as registry, use_live(telemetry):
        server = LiveServer(
            registry, telemetry, spec, port=args.port
        )
        port = server.start()
        if args.port_file is not None:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{port}\n")
        print(f"# serving http://127.0.0.1:{port} "
              f"(/metrics /health /snapshot)", file=out, flush=True)
        try:
            scenario = _build_scenario(
                args.name, args.size, args.duration, args.seed,
                shards=args.shards, shard_plan=args.shard_plan,
            )
            polygons = polygon_query_workload(
                scenario.network, random.Random(args.seed + 1),
                count=args.queries,
            )
            num_ticks = max(
                int(args.duration / scenario.fleet.dt + 1e-9), 1
            )
            stride = max(num_ticks // max(args.queries, 1), 1)
            progress = {"tick": 0, "query": 0}

            def on_tick(t: float) -> None:
                telemetry.advance(t)
                progress["tick"] += 1
                if (progress["tick"] % stride == 0
                        and progress["query"] < len(polygons)):
                    # A fresh one-query batch per sampled tick: the
                    # engine's run() feeds dbms_batch_seconds /
                    # dbms_batch_queries into the live windows.
                    engine = _batch_engine(scenario.database)
                    engine.run([RangeQuery(
                        polygons[progress["query"]], t
                    )])
                    progress["query"] += 1
                if spike is not None and t >= spike[0]:
                    telemetry.observe("dbms_batch_seconds", spike[1])
                if collector is not None:
                    collector.sample(now=t)

            counts = scenario.fleet.run(on_tick=on_tick)
            telemetry.advance(args.duration)
            if collector is not None:
                collector.sample(force=True)
            verdict = evaluate(spec, telemetry.window_state())
            total = sum(counts.values())
            print(f"# run complete: {scenario.name}, "
                  f"{len(scenario.database)} objects, {total} update "
                  f"messages, {progress['query']} batched queries",
                  file=out, flush=True)
            if collector is not None:
                print(f"# collector: {collector.rows} snapshots -> "
                      f"{collector.path}", file=out, flush=True)
            print(f"# slo status: {verdict['status']}", file=out,
                  flush=True)
            if args.slo is not None:
                print(verdict_json(verdict), file=out, flush=True)
            if args.hold > 0:
                print(f"# holding the endpoint for {args.hold}s",
                      file=out, flush=True)
                time.sleep(args.hold)
        finally:
            server.stop()
            if collector is not None:
                collector.close()
    return 0


def _cmd_monitor_check(args: argparse.Namespace, out: TextIO) -> int:
    """Replay a collector file through the SLO evaluator offline."""
    from repro.obs.live import (
        STATUS_BURNING,
        check_file,
        load_slo,
        verdict_json,
    )

    spec = load_slo(args.slo)
    worst_burning = False
    rows = 0
    for verdict in check_file(spec, args.collector):
        rows += 1
        print(verdict_json(verdict), file=out)
        if verdict["status"] == STATUS_BURNING:
            worst_burning = True
    if rows == 0:
        raise ReproError(
            f"collector file {args.collector!r} holds no snapshots"
        )
    return 1 if worst_burning and args.strict else 0


def _cmd_monitor_tail(args: argparse.Namespace, out: TextIO) -> int:
    """Print a collector file as a per-snapshot table."""
    from repro.obs.exporters import quantile_from_buckets
    from repro.obs.live import evaluate, load_slo, read_collector

    spec = load_slo(args.slo) if args.slo is not None else None
    header, rows = read_collector(args.collector)
    print(f"# {args.collector}: {len(rows)} snapshots, fast window "
          f"{header['fast_window']}, slow window {header['slow_window']}",
          file=out)
    print(f"{'now':>8}  {'updates/fast':>12}  {'batch p95':>10}  "
          f"{'max aoi':>8}  status", file=out)
    for state in rows:
        series = state["series"]
        updates = series.get("update_messages", {})
        fast_updates = updates.get("windows", {}).get(
            "fast", {}).get("total", 0.0)
        p95 = 0.0
        batch = series.get("dbms_batch_seconds")
        if batch is not None:
            block = batch["windows"]["fast"]
            cumulative = []
            running = 0
            for bound, count in zip(batch["bounds"],
                                    block["bucket_counts"]):
                running += count
                cumulative.append({"le": bound, "count": running})
            cumulative.append(
                {"le": float("inf"), "count": block["count"]}
            )
            p95 = quantile_from_buckets(cumulative, 0.95)
        status = "-"
        if spec is not None:
            status = evaluate(spec, state)["status"]
        print(f"{state['now']:>8.2f}  {fast_updates:>12.0f}  "
              f"{p95:>10.4f}  {state['aoi']['max_age']:>8.2f}  {status}",
              file=out)
    return 0


def _bench_cases(args: argparse.Namespace):
    from repro.bench import load_directory, registered_cases

    load_directory(args.dir)
    cases = registered_cases()
    if args.filter:
        cases = [c for c in cases
                 if args.filter in c.name or args.filter in c.group]
    return cases


def _cmd_bench_list(args: argparse.Namespace, out: TextIO) -> int:
    cases = _bench_cases(args)
    if not cases:
        print("no registered benchmarks matched", file=out)
        return 1
    width = max(len(c.name) for c in cases)
    for case in cases:
        print(f"{case.name:<{width}}  [{case.group}]  {case.description}",
              file=out)
    print(f"{len(cases)} benchmark(s) registered", file=out)
    return 0


def _cmd_bench_run(args: argparse.Namespace, out: TextIO) -> int:
    from pathlib import Path

    from repro.bench import (
        compare,
        default_baseline_path,
        load_baseline,
        regressions,
        run_benchmarks,
        same_machine,
        write_results,
    )

    cases = _bench_cases(args)
    if not cases:
        print("error: no registered benchmarks matched", file=sys.stderr)
        return 1

    document = run_benchmarks(
        cases, fast=args.fast,
        progress=lambda name: print(f"running {name} ...", file=out),
    )
    width = max(len(r["name"]) for r in document["results"])
    print(f"\n{'benchmark':<{width}}  {'min_s':>10}  {'median_s':>10}  "
          f"{'stddev_s':>10}", file=out)
    for result in document["results"]:
        print(f"{result['name']:<{width}}  {result['min_s']:>10.6f}  "
              f"{result['median_s']:>10.6f}  {result['stddev_s']:>10.6f}",
              file=out)

    if args.json_out is not None:
        write_results(document, args.json_out)
        print(f"results written to {args.json_out}", file=out)

    if args.artifacts_dir is not None:
        groups = sorted({r["group"] for r in document["results"]})
        for group in groups:
            artifact = {
                **document,
                "results": [r for r in document["results"]
                            if r["group"] == group],
            }
            path = Path(args.artifacts_dir) / f"BENCH_{group}.json"
            write_results(artifact, path)
        print(f"{len(groups)} BENCH_<group>.json trajectory artifact(s) "
              f"written to {args.artifacts_dir}", file=out)

    if args.update_baseline:
        baseline_path = (Path(args.baseline) if args.baseline is not None
                         else default_baseline_path(args.dir, args.fast))
        write_results(document, baseline_path)
        print(f"baseline updated: {baseline_path}", file=out)
        return 0

    baseline_path = (Path(args.baseline) if args.baseline is not None
                     else default_baseline_path(args.dir, args.fast))
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; comparison skipped "
              f"(run with --update-baseline to create one)", file=out)
        return 0

    baseline = load_baseline(baseline_path)
    if not same_machine(document["environment"], baseline["environment"]):
        print("note: baseline was recorded on a different environment; "
              "cross-machine comparison is advisory — use a generous "
              "--tolerance or --advisory", file=out)
    comparisons = compare(document, baseline, tolerance=args.tolerance)
    for comparison in comparisons:
        if comparison.status != "ok":
            print(comparison.describe(), file=out)
    failures = regressions(comparisons)
    if failures and not args.advisory:
        print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{args.tolerance}x of {baseline_path}", file=sys.stderr)
        return 1
    label = "advisory: " if args.advisory and failures else ""
    print(f"{label}baseline check passed for {len(comparisons)} case(s) "
          f"(tolerance {args.tolerance}x)", file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out: TextIO) -> int:
    from pathlib import Path

    from repro.lint import (
        Config,
        DEFAULT_BASELINE_NAME,
        all_rules,
        apply_baseline,
        format_json,
        format_sarif,
        format_text,
        lint_paths,
        load_baseline,
        write_baseline,
        write_json,
        write_sarif,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<30} [{rule.severity:>7}] "
                  f"({rule.scope}) {rule.description}", file=out)
        return 0
    select = (frozenset(code.strip() for code in args.select.split(","))
              if args.select else None)
    config = Config(select=select)
    report = lint_paths(args.paths, config, jobs=args.jobs)
    if args.flow:
        from repro.lint import LintReport
        from repro.lint.flow import analyze_package

        root = Path(config.root)
        package_dir = Path(args.flow_package) if args.flow_package \
            else root / "src" / "repro"
        design = Path(args.flow_design) if args.flow_design \
            else root / "DESIGN.md"
        try:
            rel_prefix = package_dir.resolve().relative_to(
                root.resolve()).as_posix()
        except ValueError:
            rel_prefix = package_dir.as_posix()
        flow = analyze_package(package_dir,
                               package=package_dir.resolve().name,
                               rel_prefix=rel_prefix,
                               design_path=design, select=select)
        report = LintReport(
            findings=sorted(report.findings + flow.findings),
            files=report.files,
            suppressed=report.suppressed + flow.suppressed,
            baselined=report.baselined,
        )
    baseline_path = Path(args.baseline_path if args.baseline_path is not None
                         else DEFAULT_BASELINE_NAME)
    if args.update_baseline:
        count = write_baseline(report, baseline_path)
        print(f"baseline updated: {baseline_path} "
              f"({count} finding(s) recorded)", file=out)
        return 0
    if args.baseline:
        report = apply_baseline(report, load_baseline(baseline_path))
    if args.format == "json":
        format_json(report, out)
    elif args.format == "sarif":
        format_sarif(report, out)
    else:
        format_text(report, out)
    if args.output is not None:
        write_json(report, args.output)
    if args.sarif_out is not None:
        write_sarif(report, args.sarif_out)
    return 0 if report.ok else 1


def _issue_sequential(database, queries) -> None:
    """Answer a mixed batch workload one call at a time."""
    from repro.dbms.batch import PositionQuery, RangeQuery

    for query in queries:
        if isinstance(query, PositionQuery):
            database.position_of(query.object_id, query.time)
        elif isinstance(query, RangeQuery):
            database.range_query(
                query.polygon, query.time,
                where=query.where, class_name=query.class_name,
            )
        else:
            database.within_distance(
                query.center, query.radius, query.time,
                where=query.where, class_name=query.class_name,
            )


def _cmd_trace_record(args: argparse.Namespace, out: TextIO) -> int:
    """Record a fleet scenario plus query workload as a JSONL trace."""
    from repro.geometry.point import Point
    from repro.trace import (
        TraceRecorder,
        record_index_digest,
        use_recorder,
        write_trace,
    )
    from repro.workloads.query_workloads import mixed_query_workload

    random.seed(args.seed)
    recorder = TraceRecorder(meta={
        "command": "trace record", "scenario": args.name,
        "size": args.size, "duration": args.duration, "seed": args.seed,
        "queries": args.queries, "batch": args.batch,
        "shards": args.shards,
    })
    with use_recorder(recorder):
        scenario = _build_scenario(
            args.name, args.size, args.duration, args.seed,
            shards=args.shards,
        )
        scenario.fleet.run()
        database = scenario.database
        t_end = database.clock_time
        object_ids = database.object_ids()
        queries = mixed_query_workload(
            scenario.network, random.Random(args.seed + 1),
            args.queries, object_ids, (t_end,),
        )
        if args.batch:
            _batch_engine(database).run(queries)
        else:
            _issue_sequential(database, queries)
        # Cover the db-only query kinds too, then checkpoint the index.
        extent = scenario.network.bounding_extent()
        center = Point((extent[0] + extent[2]) / 2.0,
                       (extent[1] + extent[3]) / 2.0)
        database.nearest(center, 3, t_end)
        if object_ids:
            database.within_distance_of_object(object_ids[0], 1.0, t_end)
        record_index_digest(database)
    count = write_trace(recorder, args.out)
    print(f"{count} events written to {args.out}", file=out)
    return 0


def _cmd_trace_replay(args: argparse.Namespace, out: TextIO) -> int:
    """Re-drive a recorded trace and verify every answer digest."""
    from repro.trace import TraceReplayer

    report = TraceReplayer(
        mode=args.mode, shards=args.shards
    ).replay_file(args.trace)
    print(f"replayed {report.events_total} events: "
          f"{report.queries_checked} query digest(s), "
          f"{report.index_checks} index checkpoint(s), "
          f"{report.shard_checks} shard routing check(s)", file=out)
    if report.ok:
        print("replay OK: all digests byte-identical", file=out)
        return 0
    for mismatch in report.mismatches[:10]:
        print(f"seq {mismatch.seq} [{mismatch.kind}] {mismatch.detail}",
              file=out)
        print(f"  expected {mismatch.expected}", file=out)
        print(f"  actual   {mismatch.actual}", file=out)
    print(f"FAIL: {len(report.mismatches)} digest mismatch(es)",
          file=sys.stderr)
    return 1


def _cmd_trace_summary(args: argparse.Namespace, out: TextIO) -> int:
    from repro.trace import read_trace, render_summary, summarize

    meta, events = read_trace(args.trace)
    render_summary(summarize(meta, events), out)
    return 0


def _cmd_query(args: argparse.Namespace, out: TextIO) -> int:
    database = load_database(args.snapshot)
    answer = execute_mql(database, args.statement)
    if isinstance(answer, list):
        for entry in answer:
            marker = "certain" if entry.certain else "maybe"
            print(f"{entry.object_id}: distance in "
                  f"[{entry.min_distance:.3f}, {entry.max_distance:.3f}] mi "
                  f"({marker})", file=out)
        return 0
    if hasattr(answer, "may"):
        print(f"must: {sorted(answer.must)}", file=out)
        print(f"may : {sorted(answer.may - answer.must)}", file=out)
        print(f"examined {answer.examined} of {len(database)} objects",
              file=out)
    elif hasattr(answer, "position"):
        print(f"position ({answer.position.x:.4f}, "
              f"{answer.position.y:.4f}) +/- {answer.error_bound:.4f} mi",
              file=out)
    elif answer is None:
        print("never (within the horizon)", file=out)
    else:
        print(f"t = {answer:.3f} min", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Moving-objects database (Wolfson et al., ICDE 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run the reproduction report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--metrics-out", default=None,
                        help="write a JSONL metrics snapshot of the run")
    report.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep-shaped "
                             "experiments (numbers are identical for "
                             "any value)")
    report.add_argument("--profile", action="store_true",
                        help="record spans and print a flame summary "
                             "after the run")
    report.add_argument("--trace-out", default=None,
                        help="record the run's DBMS workload as a JSONL "
                             "flight-recorder trace at this path")
    report.add_argument("--shards", type=int, default=4,
                        help="shard count for the sharding experiment "
                             "(E20); answers are shard-count invariant")
    report.add_argument("--live-port", type=int, default=None,
                        help="serve /metrics, /health, /snapshot on this "
                             "port for the duration of the report "
                             "(0 binds an ephemeral port; wall-clock "
                             "windows)")
    report.add_argument("--slo", default=None,
                        help="repro-slo/1 spec evaluated over the live "
                             "windows; the verdict is printed after the "
                             "report")
    report.set_defaults(func=_cmd_report)

    simulate = sub.add_parser("simulate", help="simulate one trip")
    simulate.add_argument("--policy", default="ail",
                          choices=sorted(policy_names()))
    simulate.add_argument("--cost", type=float, default=5.0,
                          help="update cost C")
    simulate.add_argument("--curve", default="city",
                          choices=sorted(_CURVES))
    simulate.add_argument("--trace", default=None,
                          help="CSV speed trace (overrides --curve)")
    simulate.add_argument("--duration", type=float, default=60.0)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--dt", type=float, default=1.0 / 60.0)
    simulate.add_argument("--series-csv", default=None,
                          help="write per-tick series to this CSV path")
    simulate.add_argument("--jobs", type=int, default=1,
                          help="enable the cached-grid fast path "
                               "(>1; numbers are identical)")
    simulate.set_defaults(func=_cmd_simulate)

    scenario = sub.add_parser("scenario", help="run a fleet scenario")
    scenario.add_argument("--name", default="taxi",
                          choices=("taxi", "trucking", "battlefield"))
    scenario.add_argument("--size", type=int, default=10)
    scenario.add_argument("--duration", type=float, default=15.0)
    scenario.add_argument("--seed", type=int, default=7)
    scenario.add_argument("--snapshot", default=None,
                          help="save the final database as JSON")
    scenario.add_argument("--profile", action="store_true",
                          help="record spans and print a flame summary "
                               "after the run")
    scenario.set_defaults(func=_cmd_scenario)

    stats = sub.add_parser(
        "stats", help="run a fleet scenario and emit a metrics snapshot"
    )
    stats.add_argument("--name", default="taxi",
                       choices=("taxi", "trucking", "battlefield"))
    stats.add_argument("--size", type=int, default=10)
    stats.add_argument("--duration", type=float, default=15.0)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--queries", type=int, default=20,
                       help="range queries issued against the live database")
    stats.add_argument("--batch", action="store_true",
                       help="answer the query workload through the batched "
                            "query engine (shared index traversal + "
                            "uncertainty cache) after the run")
    stats.add_argument("--format", default="prom",
                       choices=("prom", "jsonl", "both"),
                       help="snapshot format(s) printed to stdout")
    stats.add_argument("--prom-out", default=None,
                       help="write the Prometheus-text snapshot to this path")
    stats.add_argument("--jsonl-out", default=None,
                       help="write the JSONL snapshot to this path")
    stats.add_argument("--spans-out", default=None,
                       help="write the span trace (JSONL) to this path")
    stats.add_argument("--trace-out", default=None,
                       help="record the run's DBMS workload as a JSONL "
                            "flight-recorder trace at this path")
    stats.add_argument("--shards", type=int, default=None,
                       help="serve the scenario through a spatially "
                            "sharded database with this many shards "
                            "(uniform grid over the network extent)")
    stats.add_argument("--shard-plan", default=None,
                       help="load a saved partitioning plan (JSON) instead "
                            "of a uniform --shards grid")
    stats.add_argument("--jobs", type=int, default=1,
                       help="also run a small parallel sweep with this many "
                            "workers (and fan sharded --batch queries over "
                            "this many processes); telemetry is merged "
                            "under worker=\"chunk-N\" labels")
    stats.add_argument("--profile", action="store_true",
                       help="record spans under a root span and print a "
                            "flame summary after the snapshot")
    stats.add_argument("--live-port", type=int, default=None,
                       help="serve /metrics, /health, /snapshot on this "
                            "port during the run (0 binds an ephemeral "
                            "port; sim-time windows)")
    stats.add_argument("--slo", default=None,
                       help="repro-slo/1 spec evaluated over the live "
                            "windows; the verdict is printed after the "
                            "snapshot")
    stats.set_defaults(func=_cmd_stats)

    lint = sub.add_parser(
        "lint", help="paper-invariant static analysis (repro.lint)"
    )
    lint.add_argument("paths", nargs="*", default=["src", "tests"],
                      help="files/directories to lint (default: src tests)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"),
                      help="stdout rendering")
    lint.add_argument("--jobs", type=int, default=1,
                      help="fan the per-file pass over N worker "
                           "processes (output byte-identical to serial)")
    lint.add_argument("--flow", action="store_true",
                      help="also run the whole-program flow pass "
                           "(call-graph taint RPR601-603, pool "
                           "picklability RPR604, schema contracts "
                           "RPR605) over src/repro")
    lint.add_argument("--flow-package", default=None,
                      help="package directory the flow pass analyzes "
                           "(default: src/repro)")
    lint.add_argument("--flow-design", default=None,
                      help="DESIGN.md whose schema registry RPR605 "
                           "checks against (default: ./DESIGN.md)")
    lint.add_argument("--sarif-out", default=None,
                      help="also write the SARIF 2.1.0 log here (CI "
                           "code-scanning annotation)")
    lint.add_argument("--baseline", action="store_true",
                      help="subtract the committed baseline: grandfathered "
                           "findings pass, new findings fail")
    lint.add_argument("--baseline-path", default=None,
                      help="baseline JSON path (default: lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="record this run's findings as the new baseline "
                           "and exit 0")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--output", default=None,
                      help="also write the JSON report (repro-lint/1) here")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.set_defaults(func=_cmd_lint)

    query = sub.add_parser("query", help="run MQL against a snapshot")
    query.add_argument("snapshot", help="JSON snapshot path")
    query.add_argument("statement", help="MQL statement")
    query.set_defaults(func=_cmd_query)

    bench = sub.add_parser(
        "bench", help="run the unified benchmark harness"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def common_bench_args(p):
        p.add_argument("--dir", default="benchmarks",
                       help="directory of bench_*.py scripts to load")
        p.add_argument("--filter", default=None,
                       help="only cases whose name or group contains this "
                            "substring")

    bench_list = bench_sub.add_parser(
        "list", help="list the registered benchmark cases"
    )
    common_bench_args(bench_list)
    bench_list.set_defaults(func=_cmd_bench_list)

    bench_run = bench_sub.add_parser(
        "run", help="time the registered cases and gate against baselines"
    )
    common_bench_args(bench_run)
    bench_run.add_argument("--fast", action="store_true",
                           help="reduced warmup/repeat discipline (CI smoke; "
                                "compared against the fast baseline)")
    bench_run.add_argument("--json-out", default=None,
                           help="write the full schema-versioned result "
                                "document to this path")
    bench_run.add_argument("--artifacts-dir", default=".",
                           help="write per-group BENCH_<group>.json "
                                "trajectory artifacts here")
    bench_run.add_argument("--baseline", default=None,
                           help="baseline JSON to gate against (default: "
                                "<dir>/baselines/bench-<mode>.json)")
    bench_run.add_argument("--tolerance", type=float, default=1.5,
                           help="regression gate: current min may be up to "
                                "this multiple of the baseline min")
    bench_run.add_argument("--advisory", action="store_true",
                           help="report regressions but exit 0 (for "
                                "cross-machine comparisons)")
    bench_run.add_argument("--update-baseline", action="store_true",
                           help="write this run as the new baseline instead "
                                "of gating")
    bench_run.set_defaults(func=_cmd_bench_run)

    trace = sub.add_parser(
        "trace", help="record/replay/summarize workload traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_record = trace_sub.add_parser(
        "record", help="record a fleet scenario + query workload as "
                       "schema-versioned JSONL"
    )
    trace_record.add_argument("--name", default="taxi",
                              choices=("taxi", "trucking", "battlefield"))
    trace_record.add_argument("--size", type=int, default=10)
    trace_record.add_argument("--duration", type=float, default=15.0)
    trace_record.add_argument("--seed", type=int, default=7)
    trace_record.add_argument("--queries", type=int, default=20,
                              help="mixed position/range/within queries "
                                   "issued after the run")
    trace_record.add_argument("--batch", action="store_true",
                              help="issue the query workload through the "
                                   "batched query engine")
    trace_record.add_argument("--shards", type=int, default=None,
                              help="record the run through a sharded "
                                   "database with this many shards")
    trace_record.add_argument("--out", default="trace.jsonl",
                              help="trace output path")
    trace_record.set_defaults(func=_cmd_trace_record)

    trace_replay = trace_sub.add_parser(
        "replay", help="re-drive a trace against a fresh database and "
                       "verify byte-identical answer digests"
    )
    trace_replay.add_argument("trace", help="JSONL trace path")
    trace_replay.add_argument("--shards", type=int, default=None,
                              help="replay over this many shards instead "
                                   "of the recorded layout; answer digests "
                                   "must still match")
    trace_replay.add_argument("--mode", default="auto",
                              choices=("auto", "sequential", "batch"),
                              help="query path: as recorded (auto), or "
                                   "forced sequential/batched")
    trace_replay.set_defaults(func=_cmd_trace_replay)

    trace_summary = trace_sub.add_parser(
        "summary", help="print aggregate event counts for a trace"
    )
    trace_summary.add_argument("trace", help="JSONL trace path")
    trace_summary.set_defaults(func=_cmd_trace_summary)

    monitor = sub.add_parser(
        "monitor", help="live telemetry: serve/check/tail windowed "
                        "metrics and SLO burn rates"
    )
    monitor_sub = monitor.add_subparsers(dest="monitor_command",
                                         required=True)

    monitor_serve = monitor_sub.add_parser(
        "serve", help="run a scenario under live telemetry and serve "
                      "/metrics, /health, /snapshot over HTTP"
    )
    monitor_serve.add_argument("--name", default="taxi",
                               choices=("taxi", "trucking", "battlefield"))
    monitor_serve.add_argument("--size", type=int, default=10)
    monitor_serve.add_argument("--duration", type=float, default=15.0)
    monitor_serve.add_argument("--seed", type=int, default=7)
    monitor_serve.add_argument("--queries", type=int, default=20,
                               help="batched range queries spread over "
                                    "the run's ticks")
    monitor_serve.add_argument("--shards", type=int, default=None,
                               help="serve through a sharded database "
                                    "with this many shards")
    monitor_serve.add_argument("--shard-plan", default=None,
                               help="load a saved partitioning plan "
                                    "instead of a uniform --shards grid")
    monitor_serve.add_argument("--port", type=int, default=0,
                               help="HTTP port (0 binds an ephemeral "
                                    "port; it is printed and optionally "
                                    "written to --port-file)")
    monitor_serve.add_argument("--port-file", default=None,
                               help="write the bound port here (for "
                                    "scripts racing a backgrounded serve)")
    monitor_serve.add_argument("--hold", type=float, default=0.0,
                               help="keep serving this many wall-clock "
                                    "seconds after the run finishes")
    monitor_serve.add_argument("--slo", default=None,
                               help="repro-slo/1 JSON spec driving "
                                    "/health (absent: always healthy)")
    monitor_serve.add_argument("--collector-out", default=None,
                               help="append windowed snapshots to this "
                                    "JSONL file (repro-live-collector/1)")
    monitor_serve.add_argument("--interval", type=float, default=1.0,
                               help="collector cadence in sim minutes")
    monitor_serve.add_argument("--fast-window", type=float, default=5.0,
                               help="fast window width (sim minutes)")
    monitor_serve.add_argument("--slow-window", type=float, default=60.0,
                               help="slow window width (sim minutes)")
    monitor_serve.add_argument("--bucket", type=float, default=0.5,
                               help="ring-buffer bucket width "
                                    "(sim minutes)")
    monitor_serve.add_argument("--spike", default=None,
                               help="inject a latency spike: START:SECONDS "
                                    "observes SECONDS into "
                                    "dbms_batch_seconds on every tick from "
                                    "sim time START (burn-rate demo/tests)")
    monitor_serve.set_defaults(func=_cmd_monitor_serve)

    monitor_check = monitor_sub.add_parser(
        "check", help="replay a collector JSONL through the SLO "
                      "evaluator; verdicts are byte-identical to the "
                      "live /health bodies"
    )
    monitor_check.add_argument("collector",
                               help="repro-live-collector/1 JSONL path")
    monitor_check.add_argument("--slo", required=True,
                               help="repro-slo/1 JSON spec")
    monitor_check.add_argument("--strict", action="store_true",
                               help="exit 1 if any snapshot is burning")
    monitor_check.set_defaults(func=_cmd_monitor_check)

    monitor_tail = monitor_sub.add_parser(
        "tail", help="print a collector JSONL as a per-snapshot table"
    )
    monitor_tail.add_argument("collector",
                              help="repro-live-collector/1 JSONL path")
    monitor_tail.add_argument("--slo", default=None,
                              help="also evaluate each snapshot against "
                                   "this repro-slo/1 spec")
    monitor_tail.set_defaults(func=_cmd_monitor_tail)
    return parser


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    if out is None:
        out = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "build_parser",
    "main",
]
