"""Run every experiment and print the full report.

Usage::

    python -m repro.experiments.runner            # full report
    python -m repro.experiments.runner --fast     # reduced sizes

The output is the text the benchmarks assert on and the source of the
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.experiments.figures import (
    figure_bound_shapes,
    figure_messages,
    figure_total_cost,
    figure_uncertainty,
    run_standard_sweep,
)
from repro.experiments.optimality import table_online_vs_offline
from repro.experiments.robustness import table_noise_robustness
from repro.experiments.index_tuning import table_slab_tuning
from repro.experiments.extensions import (
    table_adaptive_policy,
    table_horizon_policy,
    table_route_change,
    table_xy_vs_route,
)
from repro.experiments.indexing import (
    experiment_index_maintenance,
    experiment_index_sublinearity,
    experiment_may_must_correctness,
)
from repro.experiments.sharding import table_sharding
from repro.experiments.sweep import SweepSpec
from repro.experiments.tables import (
    example1_threshold_trace,
    table_delay_ablation,
    table_example1,
    table_predictor_ablation,
    table_threshold_algebra,
    table_update_savings,
)


def fast_spec() -> SweepSpec:
    """A reduced sweep for quick runs and CI."""
    return SweepSpec(
        update_costs=(1.0, 5.0, 20.0),
        num_curves=6,
        duration=30.0,
        dt=1.0 / 30.0,
    )


def run_all(fast: bool = False, out: TextIO | None = None,
            jobs: int = 1, shards: int = 4) -> None:
    """Execute E1–E20 and write the report to ``out`` (default stdout).

    ``out`` defaults to *the current* ``sys.stdout`` at call time, so
    stream redirection (e.g. under test capture) behaves as expected.
    ``jobs`` fans the sweep-shaped experiments (E1–E3, E4, the ablation
    tables) over worker processes; every number in the report is
    invariant under the job count.  ``shards`` sets the shard budget
    for the E20 shard-plan search.
    """
    if out is None:
        out = sys.stdout

    def emit(text: str = "") -> None:
        print(text, file=out)

    emit("Reproduction report: Wolfson et al., ICDE 1998")
    emit("=" * 60)
    emit()

    spec = fast_spec() if fast else SweepSpec()
    sweep = run_standard_sweep(spec, jobs=jobs)
    for figure in (
        figure_messages(sweep),
        figure_total_cost(sweep),
        figure_uncertainty(sweep),
    ):
        emit(f"[{figure.experiment_id}]")
        emit(figure.render())
        emit()

    savings = table_update_savings(
        num_curves=spec.num_curves, duration=spec.duration, dt=spec.dt,
        jobs=jobs,
    )
    emit(f"[{savings.experiment_id}]")
    emit(savings.render())
    emit()

    example1 = table_example1()
    emit(f"[{example1.experiment_id}]")
    emit(example1.render())
    minutes_after_stop = example1_threshold_trace()
    emit(
        "Simulated Example 1 trace: first dl update "
        f"{minutes_after_stop:.2f} minutes after the stop "
        "(paper: ~1.74 min = 1 min 44 s)"
    )
    emit()

    shapes = figure_bound_shapes()
    emit(f"[{shapes.experiment_id}]")
    emit(shapes.render())
    emit()

    algebra = table_threshold_algebra()
    emit(f"[{algebra.experiment_id}]")
    emit(algebra.render())
    emit()

    predictor = table_predictor_ablation(
        num_curves=4 if fast else 8, duration=spec.duration, dt=spec.dt,
        jobs=jobs,
    )
    emit(f"[{predictor.experiment_id}]")
    emit(predictor.render())
    emit()

    delay = table_delay_ablation(
        num_curves=4 if fast else 8, duration=spec.duration, dt=spec.dt,
        jobs=jobs,
    )
    emit(f"[{delay.experiment_id}]")
    emit(delay.render())
    emit()

    sizes = (50, 200) if fast else (100, 400, 1600)
    sublinear = experiment_index_sublinearity(fleet_sizes=sizes)
    emit(f"[{sublinear.experiment_id}]")
    emit(sublinear.render())
    emit()

    correctness = experiment_may_must_correctness(
        num_objects=60 if fast else 150,
        num_queries=15 if fast else 40,
    )
    emit(f"[{correctness.experiment_id}]")
    emit(correctness.render())
    emit()

    maintenance = experiment_index_maintenance(
        num_objects=60 if fast else 200
    )
    emit(f"[{maintenance.experiment_id}]")
    emit(maintenance.render())
    emit()

    extension_tables = [
        table_horizon_policy(
            num_curves=3 if fast else 6, duration=spec.duration, dt=spec.dt
        ),
        table_adaptive_policy(
            num_trips=3 if fast else 6, duration=spec.duration, dt=spec.dt
        ),
        table_xy_vs_route(dt=spec.dt),
        table_route_change(),
    ]
    for extension in extension_tables:
        emit(f"[{extension.experiment_id}]")
        emit(extension.render())
        emit()

    optimality = table_online_vs_offline(
        num_curves=3 if fast else 8, duration=spec.duration,
        policy_dt=spec.dt, offline_dt=0.5 if fast else 0.25,
    )
    emit(f"[{optimality.experiment_id}]")
    emit(optimality.render())
    emit()

    robustness = table_noise_robustness(
        num_curves=3 if fast else 5, duration=spec.duration, dt=spec.dt,
    )
    emit(f"[{robustness.experiment_id}]")
    emit(robustness.render(precision=4))
    emit()

    tuning = table_slab_tuning(
        num_objects=60 if fast else 150,
        num_queries=10 if fast else 20,
    )
    emit(f"[{tuning.experiment_id}]")
    emit(tuning.render())
    emit()

    sharding = table_sharding(
        num_shards=shards,
        num_objects=12 if fast else 24,
        num_updates=8 if fast else 12,
        num_queries=60 if fast else 160,
    )
    emit(f"[{sharding.experiment_id}]")
    emit(sharding.render())
    emit()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the full reproduction report."
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced sweep sizes for a quick run",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="run under a live metrics registry and write its JSONL "
             "snapshot to this path (machine-readable run telemetry)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep-shaped experiments "
             "(results are identical for any value)",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard budget for the E20 shard-plan search",
    )
    args = parser.parse_args(argv)
    if args.metrics_out is not None:
        from repro.obs import use_registry, write_jsonl

        with use_registry() as registry:
            run_all(fast=args.fast, jobs=args.jobs, shards=args.shards)
        write_jsonl(registry, args.metrics_out)
    else:
        run_all(fast=args.fast, jobs=args.jobs, shards=args.shards)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

__all__ = [
    "fast_spec",
    "main",
    "run_all",
]
