"""Extension experiments (E13–E16): beyond the paper's evaluation.

* E13 — the generic horizon-cost policy: equivalence with the
  closed-form trigger under uniform cost, and operation under the
  *step* deviation cost function, which has no closed-form threshold
  in the paper.
* E14 — adaptive policy switching (§3.1's "the most appropriate policy
  may be different for different speed patterns", automated).
* E15 — the §5 argument measured: per-coordinate (x, y) dead reckoning
  vs. route-based modeling on increasingly winding routes at constant
  speed.
* E16 — route changes mid-trip (§3.1's infinite-route-distance rule):
  transitions force updates, the index follows, queries stay sound.
"""

from __future__ import annotations

import random

from repro.core.adaptive import AdaptivePolicy
from repro.core.cost import StepDeviationCost
from repro.core.horizon import HorizonCostPolicy
from repro.core.policies import make_policy
from repro.dbms.database import MovingObjectDatabase
from repro.errors import ExperimentError
from repro.experiments.tables import TableResult
from repro.geometry.polygon import Polygon
from repro.index.timespace import TimeSpaceIndex
from repro.routes.generators import straight_route, winding_route
from repro.sim.engine import simulate_trip
from repro.sim.metrics import aggregate_metrics
from repro.sim.multileg import Leg, MultiLegDriver, MultiLegTrip
from repro.sim.speed_curves import (
    CityCurve,
    ConstantCurve,
    HighwayCurve,
    MixedCurve,
)
from repro.sim.trip import Trip
from repro.sim.xy_reckoning import (
    simulate_route_dead_reckoning,
    simulate_xy_dead_reckoning,
)
from repro.units import DEFAULT_TICK_MINUTES


def table_horizon_policy(update_cost: float = 5.0, num_curves: int = 6,
                         duration: float = 60.0, seed: int = 31,
                         dt: float = DEFAULT_TICK_MINUTES) -> TableResult:
    """E13: the generic cost-comparison policy at work.

    Row 1 — uniform cost sanity: the horizon policy's trigger is
    ``C/H``, so with ``H`` near the ail policy's typical inter-update
    gap the two behave comparably.
    Rows 2–3 — step cost: the horizon policy holds the deviation near
    the step threshold ``h`` (imprecision below ``h`` is free, so it
    lets the deviation ride up to it), which the uniform-cost policies
    cannot express.
    """
    rng = random.Random(seed)
    curves = [CityCurve(duration, rng) for _ in range(num_curves)]
    trips = [Trip.synthetic(c, route_id=f"hz-{i}")
             for i, c in enumerate(curves)]

    def run(policy_factory, cost_function=None):
        metrics = []
        for trip in trips:
            policy = policy_factory()
            result = simulate_trip(trip, policy, dt=dt)
            metrics.append(result.metrics)
        return aggregate_metrics(metrics)

    uniform_horizon = run(
        lambda: HorizonCostPolicy(update_cost, horizon=5.0)
    )
    ail = run(lambda: make_policy("ail", update_cost))

    step = StepDeviationCost(threshold=0.5)
    step_horizon = run(
        lambda: HorizonCostPolicy(update_cost, horizon=5.0,
                                  cost_function=step)
    )
    step_fixed = run(
        lambda: make_policy("fixed-threshold", update_cost, bound=0.5,
                            cost_function=step)
    )
    rows: list[list[object]] = [
        ["uniform: horizon(H=5)", uniform_horizon.num_updates,
         uniform_horizon.total_cost, uniform_horizon.max_deviation],
        ["uniform: ail (closed form)", ail.num_updates,
         ail.total_cost, ail.max_deviation],
        ["step(h=0.5): horizon(H=5)", step_horizon.num_updates,
         step_horizon.total_cost, step_horizon.max_deviation],
        ["step(h=0.5): fixed-threshold(0.5)", step_fixed.num_updates,
         step_fixed.total_cost, step_fixed.max_deviation],
    ]
    return TableResult(
        experiment_id="E13",
        title="Generic horizon-cost policy (C=5)",
        headers=["configuration", "messages/trip", "total cost",
                 "max deviation"],
        rows=rows,
    )


def table_adaptive_policy(update_cost: float = 5.0, num_trips: int = 6,
                          duration: float = 60.0, seed: int = 37,
                          dt: float = DEFAULT_TICK_MINUTES) -> TableResult:
    """E14: adaptive switching on mixed city/highway trips.

    The adaptive policy should track the better of its two delegates on
    mixed trips (city -> highway -> city), where any fixed choice is
    wrong half the time.
    """
    rng = random.Random(seed)
    trips = []
    for i in range(num_trips):
        third = duration / 3.0
        curve = MixedCurve([
            CityCurve(third, rng),
            HighwayCurve(third, rng),
            CityCurve(duration - 2 * third, rng),
        ])
        trips.append(Trip.synthetic(curve, route_id=f"adapt-{i}"))

    rows: list[list[object]] = []
    for label, factory in (
        ("cil (always current)", lambda: make_policy("cil", update_cost)),
        ("ail (always average)", lambda: make_policy("ail", update_cost)),
        ("adaptive (switching)", lambda: AdaptivePolicy(update_cost)),
    ):
        metrics = [
            simulate_trip(trip, factory(), dt=dt).metrics for trip in trips
        ]
        aggregate = aggregate_metrics(
            [m for m in metrics]
        ) if len({m.policy for m in metrics}) == 1 else None
        total = sum(m.total_cost for m in metrics) / len(metrics)
        updates = sum(m.num_updates for m in metrics) / len(metrics)
        deviation = sum(m.avg_deviation for m in metrics) / len(metrics)
        rows.append([label, updates, total, deviation])
    return TableResult(
        experiment_id="E14",
        title="Adaptive policy switching on mixed trips (C=5)",
        headers=["policy", "messages/trip", "total cost", "avg deviation"],
        rows=rows,
    )


def table_xy_vs_route(threshold: float = 0.2, duration: float = 30.0,
                      speed: float = 1.0, seed: int = 41,
                      dt: float = DEFAULT_TICK_MINUTES) -> TableResult:
    """E15: the §5 winding-route argument, measured.

    A vehicle drives at *constant speed* over routes of increasing
    curvature.  Route-based dead reckoning never needs an update (the
    declared speed stays exact); per-coordinate reckoning must update
    at every sufficient bend.
    """
    if threshold <= 0:
        raise ExperimentError(f"threshold must be positive, got {threshold}")
    rng = random.Random(seed)
    length = speed * duration + 1.0
    routes = [
        ("straight", straight_route(length, "xy-straight")),
        ("gentle (max 15 deg/seg)",
         winding_route(length, rng, "xy-gentle", max_turn_degrees=15.0)),
        ("winding (max 40 deg/seg)",
         winding_route(length, rng, "xy-winding", max_turn_degrees=40.0)),
        ("hairpin (max 80 deg/seg)",
         winding_route(length, rng, "xy-hairpin", max_turn_degrees=80.0)),
    ]
    rows: list[list[object]] = []
    for label, route in routes:
        trip = Trip(route, ConstantCurve(duration, speed))
        xy = simulate_xy_dead_reckoning(trip, threshold, dt=dt)
        route_based = simulate_route_dead_reckoning(trip, threshold, dt=dt)
        rows.append(
            [label, route_based.num_updates, xy.num_updates,
             xy.avg_deviation]
        )
    return TableResult(
        experiment_id="E15",
        title=(
            f"Route-based vs. per-coordinate dead reckoning "
            f"(constant speed, threshold {threshold} mi)"
        ),
        headers=["route shape", "route-model updates", "xy-model updates",
                 "xy avg deviation"],
        rows=rows,
    )


def table_route_change(update_cost: float = 5.0, num_legs: int = 4,
                       duration: float = 20.0, seed: int = 43,
                       dt: float = 1.0 / 30.0) -> TableResult:
    """E16: route changes force updates and the index follows.

    A journey over ``num_legs`` consecutive routes: every leg boundary
    must produce a route-change update; after the run, a range query
    around the vehicle's true position must include it.
    """
    rng = random.Random(seed)
    leg_length = 0.9 * duration / num_legs + 0.5
    legs = [
        Leg(winding_route(leg_length, rng, f"leg-{i}",
                          origin=(i * leg_length, 0.0),
                          max_turn_degrees=20.0))
        for i in range(num_legs)
    ]
    curve = HighwayCurve(duration, rng, cruise=0.8)
    trip = MultiLegTrip(legs, curve)
    database = MovingObjectDatabase(index=TimeSpaceIndex(),
                                    horizon=duration * 2)
    database.schema.define_mobile_point_class("courier")
    driver = MultiLegDriver(
        "courier-1", "courier", trip, make_policy("cil", update_cost),
        database, dt=dt,
    )
    total_messages = driver.run()

    t = database.clock_time
    actual = trip.position(min(t, trip.duration))
    answer = database.within_distance(actual, 3.0, t)
    final_route = database.record("courier-1").attribute.route_id
    database._index.tree.check_invariants()

    rows: list[list[object]] = [
        ["legs travelled", len({tr.to_route for tr in driver.transitions})
         + 1],
        ["route-change updates", len(driver.transitions)],
        ["policy-triggered updates", driver.policy_updates],
        ["total messages", total_messages],
        ["final route is last leg", final_route == legs[-1].route.route_id
         or final_route],
        ["vehicle found near true position", "courier-1" in answer.may],
    ]
    return TableResult(
        experiment_id="E16",
        title="Mid-trip route changes (multi-leg journey)",
        headers=["quantity", "value"],
        rows=rows,
    )

__all__ = [
    "table_adaptive_policy",
    "table_horizon_policy",
    "table_route_change",
    "table_xy_vs_route",
]
