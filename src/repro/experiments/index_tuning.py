"""E19: time-slab granularity tuning for the time-space index.

§4.2 leaves the index's space/time partitioning to "performance
considerations that we intend to study in future work".  The knob our
implementation exposes is the slab width (minutes of o-plane per
indexed box).  The trade-off:

* *narrow slabs* — tight boxes, few false-positive candidates per
  query, but more boxes per o-plane (more maintenance work per update
  and a bigger tree);
* *wide slabs* — cheap maintenance, loose boxes that admit candidates
  whose uncertainty interval is nowhere near the query at ``t0``.

The sweep quantifies both sides so deployments can pick a width that
matches their query/update mix.
"""

from __future__ import annotations

import random

from repro.experiments.indexing import _build_fleet
from repro.experiments.tables import TableResult
from repro.index.rtree import SearchStats
from repro.workloads.query_workloads import polygon_query_workload


def table_slab_tuning(slab_widths: tuple[float, ...] = (1.0, 2.5, 5.0, 10.0, 20.0),
                      num_objects: int = 150, num_queries: int = 20,
                      duration: float = 10.0,
                      seed: int = 59) -> TableResult:
    """Candidates/query and maintenance cost per slab width."""
    rows: list[list[object]] = []
    for slab_minutes in slab_widths:
        built = _build_fleet(
            num_objects, seed, use_index=True, duration=duration,
        )
        # Rebuild the index at the requested granularity from the final
        # database state (same objects, same planes, different slabs).
        index = built.database.rebuild_index(slab_minutes=slab_minutes)

        # The same query workload for every slab width — the rows must
        # differ only in index granularity.
        rng = random.Random(seed + 1)
        polygons = polygon_query_workload(
            built.network, rng, num_queries, side_miles=(1.0, 2.0)
        )
        t = built.end_time
        candidates_total = 0
        entries_total = 0
        answers_total = 0
        for polygon in polygons:
            stats = SearchStats()
            answer = built.database.range_query(polygon, t, stats)
            candidates_total += answer.examined
            entries_total += stats.entries_tested
            answers_total += len(answer.may)
        # Maintenance cost: boxes swapped per position update.
        sample_id = built.database.object_ids()[0]
        swap = index.replace(
            sample_id, built.database.oplane_of(sample_id), force=True
        )
        rows.append(
            [
                slab_minutes,
                index.total_boxes(),
                swap.boxes_inserted,
                candidates_total / num_queries,
                entries_total / num_queries,
                answers_total / num_queries,
            ]
        )
    return TableResult(
        experiment_id="E19",
        title=(
            f"Time-slab granularity tuning "
            f"({num_objects} objects, {num_queries} queries)"
        ),
        headers=["slab (min)", "boxes stored", "boxes/update",
                 "candidates/query", "entries tested/query", "avg |may|"],
        rows=rows,
    )

__all__ = [
    "table_slab_tuning",
]
