"""Table regeneration (experiments E4, E5, E9, E10, E11).

* E4 — the headline: temporal (dead-reckoning) position modeling cuts
  update messages to ~15 % of the traditional non-temporal method.
* E5 — Example 1's closed-form numbers (threshold 1.74 mi; dl bound
  plateaus 3.16 / 2.24 mi; ail bound 10/t).
* E9 — the §3.2 observations on thresholds: ``k_opt(dl) <= k_opt(ail)``
  for the same (a, b), yet update counts are incomparable in general.
* E10 — ablation: speed-predictor choice per driving regime.
* E11 — ablation: estimator delay (dl with its delay forced to zero
  behaves like cil).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.bounds import delayed_linear_bounds, immediate_linear_bounds
from repro.core.policies import make_policy
from repro.core.thresholds import optimal_update_threshold
from repro.errors import ExperimentError
from repro.experiments.sweep import SweepSpec
from repro.reporting.table import render_table
from repro.sim.engine import simulate_trip
from repro.sim.speed_curves import (
    CityCurve,
    HighwayCurve,
    PiecewiseConstantCurve,
    SpeedCurve,
    standard_curve_set,
)
from repro.sim.trip import Trip
from repro.units import DEFAULT_TICK_MINUTES


@dataclass(frozen=True)
class TableResult:
    """A regenerated paper table: headers, rows, and rendered text."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]

    def render(self, precision: int = 3) -> str:
        return render_table(
            self.headers, self.rows, precision=precision, title=self.title
        )

    def row_by_key(self, key: object) -> list[object]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise ExperimentError(f"no row keyed {key!r}")


def _table_trips(curves: list[SpeedCurve], label: str) -> list[Trip]:
    """Trips for a table's curve set (built once, shared across policies)."""
    return [Trip.synthetic(curve, route_id=f"tbl-{label}-{i}")
            for i, curve in enumerate(curves)]


def _run_policy_over_curves(policy_name: str, update_cost: float,
                            curves: list[SpeedCurve], dt: float,
                            executor=None, trips: list[Trip] | None = None,
                            **kwargs: object):
    """One (policy, cost) cell row over a curve set, via the executor.

    Passing the same ``executor`` and ``trips`` across calls shares the
    trips' tick grids between policies (the ablation tables compare
    several policies on one curve set, so all but the first call hit
    the cache).
    """
    from repro.exec import SweepExecutor

    if executor is None:
        executor = SweepExecutor()
    if trips is None:
        trips = _table_trips(curves, policy_name)
    spec = SweepSpec(
        policy_names=(policy_name,),
        update_costs=(update_cost,),
        num_curves=len(curves),
        duration=max(curve.duration for curve in curves),
        dt=dt,
        policy_kwargs={policy_name: dict(kwargs)} if kwargs else {},
    )
    result = executor.run(spec, trips=trips)
    return result.cells[policy_name][update_cost]


def table_update_savings(precision_miles: float = 1.0,
                         update_cost: float = 5.0,
                         num_curves: int = 20, duration: float = 60.0,
                         seed: int = 42,
                         dt: float = DEFAULT_TICK_MINUTES,
                         jobs: int = 1) -> TableResult:
    """E4: message counts, temporal modeling vs. the traditional method.

    All policies run the same curve set.  The traditional baseline
    stores a static point and must update every ``precision_miles`` of
    travel; the dead-reckoning policies update only when the *deviation
    from the declared motion* reaches their threshold.  The paper
    reports the temporal technique needing ~15 % of the traditional
    message count; the ``ratio`` column reproduces that.
    """
    if precision_miles <= 0:
        raise ExperimentError(
            f"precision must be positive, got {precision_miles}"
        )
    from repro.exec import SweepExecutor

    rng = random.Random(seed)
    curves = standard_curve_set(rng, count=num_curves, duration=duration)
    executor = SweepExecutor(jobs=jobs)
    trips = _table_trips(curves, "savings")
    rows: list[list[object]] = []
    baseline = _run_policy_over_curves(
        "traditional", update_cost, curves, dt,
        executor=executor, trips=trips, precision=precision_miles,
    )
    runs = [
        ("traditional", baseline),
        (
            "fixed-threshold",
            _run_policy_over_curves(
                "fixed-threshold", update_cost, curves, dt,
                executor=executor, trips=trips, bound=precision_miles,
            ),
        ),
        ("dl", _run_policy_over_curves("dl", update_cost, curves, dt,
                                       executor=executor, trips=trips)),
        ("ail", _run_policy_over_curves("ail", update_cost, curves, dt,
                                        executor=executor, trips=trips)),
        ("cil", _run_policy_over_curves("cil", update_cost, curves, dt,
                                        executor=executor, trips=trips)),
    ]
    for name, aggregate in runs:
        rows.append(
            [
                name,
                aggregate.num_updates,
                aggregate.num_updates / baseline.num_updates,
                aggregate.avg_deviation,
                aggregate.max_deviation,
            ]
        )
    return TableResult(
        experiment_id="E4",
        title=(
            "Update messages: temporal modeling vs. traditional "
            f"(precision target {precision_miles} mi)"
        ),
        headers=["policy", "messages/trip", "ratio vs traditional",
                 "avg deviation", "max deviation"],
        rows=rows,
    )


def table_example1(update_cost: float = 5.0) -> TableResult:
    """E5: the worked Example 1, closed form vs. library output.

    Paper values: with a = 1 mi/min, b = 2 min, C = 5 the optimal
    threshold is 1.74 miles; with v = 1, V = 1.5 the dl slow/fast bound
    plateaus are 3.16 and 2.24 miles; the ail bound at t >= 4 is 10/t.
    """
    slope, delay = 1.0, 2.0
    v, big_v = 1.0, 1.5
    threshold = optimal_update_threshold(slope, delay, update_cost)
    dl = delayed_linear_bounds(v, big_v, update_cost)
    imm = immediate_linear_bounds(v, big_v, update_cost)
    rows: list[list[object]] = [
        ["dl threshold k_opt(a=1, b=2)", 1.74, threshold],
        ["dl slow-bound plateau sqrt(2vC)", 3.16, dl.slow(10.0)],
        ["dl fast-bound plateau sqrt(2(V-v)C)", 2.24, dl.fast(10.0)],
        ["ail slow bound at t=10 (10/t)", 1.0, imm.slow(10.0)],
        ["ail fast bound at t=5 (10/t)", 2.0, imm.fast(5.0)],
        ["slow bound rises 1 mi/min early (t=2)", 2.0, dl.slow(2.0)],
        ["fast bound rises 0.5 mi/min early (t=4)", 2.0, dl.fast(4.0)],
    ]
    return TableResult(
        experiment_id="E5",
        title="Example 1: paper values vs. library (C=5, v=1, V=1.5)",
        headers=["quantity", "paper", "library"],
        rows=rows,
    )


def table_threshold_algebra(update_cost: float = 5.0) -> TableResult:
    """E9: the §3.2 threshold observations.

    (1) For any a, b > 0: ``k_opt(a, b) <= k_opt(a, 0)``.
    (2) Despite (1), update counts are incomparable: a stop-and-go
        curve where the object resumes its declared speed (large b)
        favours dl, while an immediate drift favours the immediate
        policies — demonstrated with two adversarial curves.
    """
    rows: list[list[object]] = []
    for slope, delay in ((0.5, 1.0), (1.0, 2.0), (2.0, 0.5)):
        with_delay = optimal_update_threshold(slope, delay, update_cost)
        without = optimal_update_threshold(slope, 0.0, update_cost)
        rows.append(
            [f"k_opt(a={slope}, b={delay})", with_delay, without,
             with_delay <= without + 1e-12]
        )
    dt = DEFAULT_TICK_MINUTES
    # Curve A: drive steadily, brief total stops, resume — the dl
    # policy's current-speed declaration matches the resumed speed.
    curve_a = PiecewiseConstantCurve(
        [(8.0, 1.0), (1.0, 0.0)] * 6 + [(6.0, 1.0)]
    )
    # Curve B: speed oscillates every two minutes around a stable mean —
    # the average-speed declaration (ail) wins.
    curve_b = PiecewiseConstantCurve([(2.0, 0.8), (2.0, 0.4)] * 15)
    for label, curve in (("stop-resume curve", curve_a),
                         ("oscillating curve", curve_b)):
        trip = Trip.synthetic(curve, route_id=f"alg-{label}")
        dl_updates = simulate_trip(
            trip, make_policy("dl", update_cost), dt=dt
        ).metrics.num_updates
        ail_updates = simulate_trip(
            trip, make_policy("ail", update_cost), dt=dt
        ).metrics.num_updates
        rows.append([f"updates on {label}", dl_updates, ail_updates,
                     dl_updates <= ail_updates])
    return TableResult(
        experiment_id="E9",
        title="Threshold algebra and incomparability (C=5)",
        headers=["quantity", "dl / k_opt(a,b)", "ail / k_opt(a,0)",
                 "dl <= ail"],
        rows=rows,
    )


def table_predictor_ablation(update_cost: float = 5.0, num_curves: int = 8,
                             duration: float = 60.0, seed: int = 17,
                             dt: float = DEFAULT_TICK_MINUTES,
                             jobs: int = 1) -> TableResult:
    """E10: which predicted speed suits which driving regime (§3.1).

    The paper: current speed "may be appropriate for highway driving in
    non-rush hour", average speed "for city driving, where the speed
    fluctuates sharply".  We run cil (current) and ail (average) on
    pure-highway and pure-city curve sets and compare total cost.
    """
    from repro.exec import SweepExecutor

    rng = random.Random(seed)
    highway = [HighwayCurve(duration, rng) for _ in range(num_curves)]
    city = [CityCurve(duration, rng) for _ in range(num_curves)]
    executor = SweepExecutor(jobs=jobs)
    rows: list[list[object]] = []
    for regime, curves in (("highway", highway), ("city", city)):
        trips = _table_trips(curves, regime)
        current = _run_policy_over_curves("cil", update_cost, curves, dt,
                                          executor=executor, trips=trips)
        average = _run_policy_over_curves("ail", update_cost, curves, dt,
                                          executor=executor, trips=trips)
        winner = "current" if current.total_cost < average.total_cost else "average"
        rows.append(
            [regime, current.total_cost, average.total_cost, winner]
        )
    return TableResult(
        experiment_id="E10",
        title="Predicted-speed ablation: total cost by driving regime (C=5)",
        headers=["regime", "current speed (cil)", "average speed (ail)",
                 "cheaper"],
        rows=rows,
    )


def table_delay_ablation(update_cost: float = 5.0, num_curves: int = 8,
                         duration: float = 60.0, seed: int = 29,
                         dt: float = DEFAULT_TICK_MINUTES,
                         jobs: int = 1) -> TableResult:
    """E11: what the estimator's delay term buys (dl vs. cil).

    dl and cil differ only in the estimator delay (both declare the
    current speed).  On curves with genuine post-update stability
    (piecewise-constant city phases) the delay matters; on continuously
    drifting highway curves the two nearly coincide.
    """
    from repro.exec import SweepExecutor

    rng = random.Random(seed)
    stable = [CityCurve(duration, rng) for _ in range(num_curves)]
    drifting = [HighwayCurve(duration, rng, wobble=0.15)
                for _ in range(num_curves)]
    executor = SweepExecutor(jobs=jobs)
    rows: list[list[object]] = []
    for regime, curves in (("piecewise-stable", stable),
                           ("continuous-drift", drifting)):
        trips = _table_trips(curves, regime)
        dl = _run_policy_over_curves("dl", update_cost, curves, dt,
                                     executor=executor, trips=trips)
        cil = _run_policy_over_curves("cil", update_cost, curves, dt,
                                      executor=executor, trips=trips)
        rows.append(
            [
                regime,
                dl.num_updates,
                cil.num_updates,
                dl.total_cost,
                cil.total_cost,
                abs(dl.total_cost - cil.total_cost)
                / max(cil.total_cost, 1e-12),
            ]
        )
    return TableResult(
        experiment_id="E11",
        title="Estimator-delay ablation: dl vs. cil (C=5)",
        headers=["regime", "dl msgs", "cil msgs", "dl cost", "cil cost",
                 "relative gap"],
        rows=rows,
    )


def example1_threshold_trace(update_cost: float = 5.0,
                             dt: float = DEFAULT_TICK_MINUTES) -> float:
    """Simulate Example 1's scenario end-to-end; returns update time.

    A vehicle declares 1 mile/minute, holds it for two minutes, then
    stops.  Under dl it should update ~1 minute 44 seconds after
    stopping (deviation 1.74 miles).  Returns the minutes-after-stop of
    the first update.
    """
    curve = PiecewiseConstantCurve([(2.0, 1.0), (8.0, 0.0)])
    trip = Trip.synthetic(curve, route_id="example1")
    result = simulate_trip(trip, make_policy("dl", update_cost), dt=dt)
    if not result.updates:
        raise ExperimentError("Example 1 trace produced no update")
    first = result.updates[0]
    if math.isnan(first.time):
        raise ExperimentError("Example 1 update time is NaN")
    return first.time - 2.0

__all__ = [
    "TableResult",
    "example1_threshold_trace",
    "table_delay_ablation",
    "table_example1",
    "table_predictor_ablation",
    "table_threshold_algebra",
    "table_update_savings",
]
