"""E17: online policies vs. the hindsight-optimal schedule.

The paper's policies are heuristics; how much do they leave on the
table?  We compute two offline lower bounds per trip (dynamic program,
:mod:`repro.analysis.offline`):

* *offline-current* — optimal update **times**, but each update
  declares the instantaneous speed (the information dl/cil send);
* *offline-clairvoyant* — optimal times **and** the coming segment's
  average speed (knows the future outright).

The regenerated table restates the paper's §3.4 conclusion against a
ground-truth yardstick: ail is the online policy closest to the
offline optimum, and on stop-and-go trips its average-speed
declaration can even undercut *perfectly timed* current-speed updates
— timing is not the whole game; declaring the right speed matters as
much.
"""

from __future__ import annotations

import random

from repro.analysis.offline import offline_optimal_schedule
from repro.core.policies import make_policy
from repro.experiments.tables import TableResult
from repro.sim.engine import simulate_trip
from repro.sim.speed_curves import standard_curve_set
from repro.sim.trip import Trip


def table_online_vs_offline(update_cost: float = 5.0, num_curves: int = 8,
                            duration: float = 60.0, seed: int = 47,
                            policy_dt: float = 1.0 / 30.0,
                            offline_dt: float = 0.25) -> TableResult:
    """Average total cost of each policy vs. the offline optima."""
    rng = random.Random(seed)
    curves = standard_curve_set(rng, count=num_curves, duration=duration)
    trips = [Trip.synthetic(c, route_id=f"opt-{i}")
             for i, c in enumerate(curves)]

    def mean(values: list[float]) -> float:
        return sum(values) / len(values)

    clairvoyant = mean([
        offline_optimal_schedule(trip, update_cost, dt=offline_dt,
                                 mode="segment-average").total_cost
        for trip in trips
    ])
    offline_current = mean([
        offline_optimal_schedule(trip, update_cost, dt=offline_dt,
                                 mode="current").total_cost
        for trip in trips
    ])

    rows: list[list[object]] = [
        ["offline clairvoyant (lower bound)", clairvoyant, 1.0],
        ["offline current-speed", offline_current,
         offline_current / clairvoyant],
    ]
    for name in ("dl", "ail", "cil"):
        cost = mean([
            simulate_trip(trip, make_policy(name, update_cost),
                          dt=policy_dt).metrics.total_cost
            for trip in trips
        ])
        rows.append([name, cost, cost / clairvoyant])
    return TableResult(
        experiment_id="E17",
        title=(
            f"Online policies vs. hindsight-optimal schedules "
            f"(C={update_cost}, {num_curves} one-hour trips)"
        ),
        headers=["schedule", "avg total cost", "ratio vs clairvoyant"],
        rows=rows,
    )

__all__ = [
    "table_online_vs_offline",
]
