"""Figure regeneration (experiments E1, E2, E3, E6).

The paper describes its omitted plots precisely: "a set of plots that
quantify, for each policy, the number of position-update messages,
total cost, and average uncertainty as a function of the message cost",
with the stated conclusion that "the ail policy is superior to the
other policies".  E1–E3 regenerate those three plot families from one
shared sweep; E6 plots the §3.3 bound shapes over time-since-update
(dl: rise then plateau; ail/cil: rise, peak, decay).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import delayed_linear_bounds, immediate_linear_bounds
from repro.errors import ExperimentError
from repro.experiments.sweep import SweepResult, SweepSpec, run_policy_sweep
from repro.reporting.series import Series, render_chart, render_series_table


@dataclass(frozen=True)
class Figure:
    """A regenerated paper figure: named series plus rendered text."""

    experiment_id: str
    title: str
    x_label: str
    series: list[Series]

    def render(self, chart: bool = True) -> str:
        """The figure as text: numbers table plus optional ASCII chart."""
        parts = [
            render_series_table(
                self.series, x_label=self.x_label, title=self.title
            )
        ]
        if chart:
            parts.append(render_chart(self.series, title=self.title))
        return "\n\n".join(parts)


def _sweep_figure(result: SweepResult, metric: str, experiment_id: str,
                  title: str) -> Figure:
    series = [
        Series.from_pairs(policy, result.metric_series(policy, metric))
        for policy in result.spec.policy_names
    ]
    return Figure(
        experiment_id=experiment_id,
        title=title,
        x_label="update cost C",
        series=series,
    )


def figure_messages(result: SweepResult) -> Figure:
    """E1: number of position-update messages vs. update cost C."""
    return _sweep_figure(
        result, "num_updates", "E1",
        "Messages per one-hour trip vs. update cost (per policy)",
    )


def figure_total_cost(result: SweepResult) -> Figure:
    """E2: total cost (Equation 2) vs. update cost C."""
    return _sweep_figure(
        result, "total_cost", "E2",
        "Total cost per trip vs. update cost (per policy)",
    )


def figure_uncertainty(result: SweepResult) -> Figure:
    """E3: average uncertainty vs. update cost C."""
    return _sweep_figure(
        result, "avg_uncertainty", "E3",
        "Average uncertainty (miles) vs. update cost (per policy)",
    )


def run_standard_sweep(spec: SweepSpec | None = None,
                       jobs: int = 1) -> SweepResult:
    """The shared sweep behind E1–E3 (one simulation pass, three figures).

    ``jobs`` fans the grid out over worker processes; the result is
    byte-identical to a serial run for any job count.
    """
    return run_policy_sweep(spec or SweepSpec(), jobs=jobs)


def figure_bound_shapes(declared_speed: float = 1.0, max_speed: float = 1.5,
                        update_cost: float = 5.0, horizon: float = 15.0,
                        points: int = 60) -> Figure:
    """E6: deviation-bound shape over time since the last update.

    Shows the paper's qualitative contrast — the dl bound rises and
    then stays fixed, while the immediate-policy bound rises, peaks,
    and then *decreases* (the "surprising positive result" of §3.3).
    """
    if points < 2:
        raise ExperimentError(f"need at least 2 points, got {points}")
    dl = delayed_linear_bounds(declared_speed, max_speed, update_cost)
    imm = immediate_linear_bounds(declared_speed, max_speed, update_cost)
    xs = [horizon * i / (points - 1) for i in range(points)]
    return Figure(
        experiment_id="E6",
        title=(
            f"Deviation bound vs. time since update "
            f"(v={declared_speed}, V={max_speed}, C={update_cost})"
        ),
        x_label="minutes since update",
        series=[
            Series("dl bound", tuple(xs), tuple(dl.total(x) for x in xs)),
            Series("ail/cil bound", tuple(xs), tuple(imm.total(x) for x in xs)),
        ],
    )

__all__ = [
    "Figure",
    "figure_bound_shapes",
    "figure_messages",
    "figure_total_cost",
    "figure_uncertainty",
    "run_standard_sweep",
]
