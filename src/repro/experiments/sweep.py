"""Parameter sweeps over (policy, update cost) pairs.

The core loop of §3.4: "For each speed-curve, update policy, and update
cost C we execute a simulation run ... Then, for each policy, we
average the total cost over all the speed curves, and plot this average
as a function of the update cost C.  We do the same for the average
uncertainty and for the total number of messages."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.sim.metrics import AggregateMetrics
from repro.sim.speed_curves import SpeedCurve, standard_curve_set
from repro.units import DEFAULT_TICK_MINUTES


@dataclass(frozen=True)
class SweepSpec:
    """What to sweep: policies x update costs over a shared curve set."""

    policy_names: tuple[str, ...] = ("dl", "ail", "cil")
    update_costs: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0)
    num_curves: int = 20
    duration: float = 60.0
    seed: int = 42
    dt: float = DEFAULT_TICK_MINUTES
    #: Extra keyword arguments per policy name (baselines take
    #: parameters; the paper's policies take none).
    policy_kwargs: dict[str, dict[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policy_names:
            raise ExperimentError("sweep needs at least one policy")
        if not self.update_costs:
            raise ExperimentError("sweep needs at least one update cost")
        if any(c < 0 for c in self.update_costs):
            raise ExperimentError("update costs must be nonnegative")
        if self.num_curves < 1:
            raise ExperimentError("sweep needs at least one curve")


@dataclass(frozen=True)
class SweepResult:
    """Aggregated metrics per (policy, update cost)."""

    spec: SweepSpec
    #: ``cells[policy_name][update_cost]``.
    cells: dict[str, dict[float, AggregateMetrics]]

    def metric_series(self, policy_name: str,
                      metric: str) -> list[tuple[float, float]]:
        """``(update_cost, metric_value)`` pairs for one policy."""
        try:
            by_cost = self.cells[policy_name]
        except KeyError:
            raise ExperimentError(
                f"sweep has no policy {policy_name!r}"
            ) from None
        pairs = []
        for cost in sorted(by_cost):
            aggregate = by_cost[cost]
            if not hasattr(aggregate, metric):
                raise ExperimentError(f"unknown metric {metric!r}")
            pairs.append((cost, float(getattr(aggregate, metric))))
        return pairs


def build_curves(spec: SweepSpec) -> list[SpeedCurve]:
    """The sweep's shared speed-curve set (seeded, so reproducible)."""
    rng = random.Random(spec.seed)
    return standard_curve_set(rng, count=spec.num_curves,
                              duration=spec.duration)


def run_policy_sweep(spec: SweepSpec,
                     curves: list[SpeedCurve] | None = None,
                     jobs: int = 1) -> SweepResult:
    """Run the full (policy x update-cost) grid over the curve set.

    Each policy sees the *same* trips (same curves, same routes), so
    differences in the aggregates are attributable to the policy alone.

    Execution is delegated to :class:`repro.exec.SweepExecutor`, which
    shares each trip's precomputed tick grid across every (policy, cost)
    cell and, for ``jobs > 1``, fans cells out over worker processes.
    The result is byte-identical for any job count.
    """
    from repro.exec import SweepExecutor

    return SweepExecutor(jobs=jobs).run(spec, curves=curves)

__all__ = [
    "SweepResult",
    "SweepSpec",
    "build_curves",
    "run_policy_sweep",
]
