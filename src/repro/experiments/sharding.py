"""E20: cost-model-driven shard-plan search on a skewed trace.

The scale-out question the paper's DBMS framing raises but does not
answer: how should the plane be cut into shards when the workload is
spatially skewed?  We record a "highway corridor" trace — objects and
queries concentrated in a narrow horizontal band — through the real
database under the flight recorder, distill it into a
:class:`~repro.shard.cost.TraceWorkload`, and let
:class:`~repro.shard.search.PartitionSearcher` rank candidate
partitionings by the cost model::

    alpha * update_fanout + beta * cross_shard_query_fanin
        + gamma * temporal_skew

The table contrasts every candidate against the default squarest
uniform grid: on this trace the default grid's horizontal cut slices
the corridor, so most queries fan to several shards, while the
searched plan cuts only across the corridor and keeps the p95 fan-out
down.  Measured fan-outs come from
:func:`~repro.shard.cost.measured_fanouts` (the partitioning actually
applied to every recorded query window), not from the model.
"""

from __future__ import annotations

import random

from repro.core.policies import make_policy
from repro.dbms.database import MovingObjectDatabase
from repro.dbms.update_log import PositionUpdateMessage
from repro.experiments.tables import TableResult
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline
from repro.index.timespace import TimeSpaceIndex
from repro.routes.route import Route
from repro.shard import (
    PartitionSearcher,
    ShardCostModel,
    measured_fanouts,
    percentile,
    uniform_grid_for,
    workload_from_events,
)
from repro.trace.events import TraceEvent
from repro.trace.recorder import TraceRecorder, use_recorder

#: Corridor lane y-coordinates: a band straddling the extent's middle,
#: so any horizontal cut through the centre slices every lane.
_LANES = (3.7, 3.9, 4.1, 4.3)

#: Corridor extent (miles); routes span the full x-range.
_EXTENT = 8.0


def record_corridor_trace(num_objects: int = 24, num_updates: int = 12,
                          num_queries: int = 160,
                          seed: int = 67) -> tuple[TraceEvent, ...]:
    """Record the skewed corridor workload through a real database.

    Objects cruise the corridor lanes — spread along the full length,
    drifting with small per-minute displacements — sending periodic
    position updates; the query load is small within-distance windows
    centred on the corridor.  Everything is captured by the flight
    recorder, so the returned events are exactly what ``repro trace
    record`` would persist.
    """
    rng = random.Random(seed)
    recorder = TraceRecorder(meta={"experiment": "E20", "seed": seed})
    with use_recorder(recorder):
        database = MovingObjectDatabase(index=TimeSpaceIndex())
        database.schema.define_mobile_point_class("car", ())
        for lane, y in enumerate(_LANES):
            database.register_route(Route(
                f"lane-{lane}",
                Polyline([Point(0.0, y), Point(_EXTENT, y)]),
            ))
        policy = make_policy("dl", 5.0)
        xs: list[float] = []
        for i in range(num_objects):
            lane = i % len(_LANES)
            x = rng.uniform(0.3, _EXTENT - 0.3)
            xs.append(x)
            database.insert_moving_object(
                f"car-{i}", "car", f"lane-{lane}", 0.0,
                Point(x, _LANES[lane]), 1, rng.uniform(0.3, 0.5),
                policy, max_speed=0.8,
            )
        def issue_query(at: float) -> None:
            center = Point(rng.uniform(2.6, 5.4), rng.uniform(3.8, 4.2))
            database.within_distance(center, 0.35, at)

        # Queries interleave with the update ticks so every time
        # segment carries a realistic read+write mix.
        per_tick = max(num_queries // num_updates, 1)
        issued = 0
        t = 0.0
        for _ in range(num_updates):
            t += 1.0
            for i in range(num_objects):
                lane = i % len(_LANES)
                xs[i] = min(max(xs[i] + rng.uniform(-0.25, 0.3), 0.2),
                            _EXTENT - 0.2)
                database.process_update(PositionUpdateMessage(
                    f"car-{i}", t, xs[i], _LANES[lane],
                    rng.uniform(0.3, 0.5), route_id=f"lane-{lane}",
                    direction=1,
                ))
            for _ in range(per_tick):
                if issued >= num_queries:
                    break
                issue_query(t + 0.5)
                issued += 1
        while issued < num_queries:
            issue_query(t + 0.5)
            issued += 1
    return recorder.events()


def table_sharding(num_shards: int = 4, num_objects: int = 24,
                   num_updates: int = 12, num_queries: int = 160,
                   seed: int = 67) -> TableResult:
    """Rank candidate shard plans on the recorded corridor trace."""
    events = record_corridor_trace(
        num_objects=num_objects, num_updates=num_updates,
        num_queries=num_queries, seed=seed,
    )
    workload = workload_from_events(events)
    model = ShardCostModel()
    ranked = PartitionSearcher(num_shards, model).rank(workload)
    default = uniform_grid_for(workload.bounds, num_shards)
    default_label = f"uniform-{default.nx}x{default.ny}"
    rows: list[list[object]] = []
    for scored in ranked:
        fanouts = measured_fanouts(scored.partitioning, workload)
        label = scored.label
        if label == default_label:
            label += " (default)"
        rows.append([
            label,
            scored.cost.update_fanout,
            scored.cost.query_fanin,
            scored.cost.temporal_skew,
            scored.cost.total,
            percentile(fanouts, 0.95) if fanouts else 0.0,
        ])
    return TableResult(
        experiment_id="E20",
        title=(
            f"Shard-plan search on the corridor trace "
            f"({num_objects} objects, {num_queries} queries, "
            f"{num_shards} shards; best plan first)"
        ),
        headers=["plan", "update fan-out", "query fan-in",
                 "temporal skew", "total cost", "p95 query fan-out"],
        rows=rows,
    )


__all__ = [
    "record_corridor_trace",
    "table_sharding",
]
