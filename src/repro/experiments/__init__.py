"""The experiment harness: every table and figure of the evaluation.

The experiment ids follow DESIGN.md:

* E1–E3 (:mod:`repro.experiments.figures`) — messages, total cost and
  average uncertainty vs. the update cost ``C``, per policy (§3.4's
  described-but-omitted plots),
* E4, E5, E9, E10, E11 (:mod:`repro.experiments.tables`) — the 85 %
  update-savings headline, the Example 1 closed-form check, the
  threshold algebra observations, and the two ablations,
* E6 (:mod:`repro.experiments.figures`) — bound shapes over time,
* E7, E8, E12 (:mod:`repro.experiments.indexing`) — index sublinearity,
  may/must correctness, and index maintenance cost,
* :mod:`repro.experiments.runner` — run everything and print a report
  (``python -m repro.experiments.runner``).
"""

from repro.experiments.sweep import SweepSpec, run_policy_sweep
from repro.experiments.figures import (
    figure_bound_shapes,
    figure_messages,
    figure_total_cost,
    figure_uncertainty,
)
from repro.experiments.tables import (
    table_delay_ablation,
    table_example1,
    table_predictor_ablation,
    table_threshold_algebra,
    table_update_savings,
)
from repro.experiments.indexing import (
    experiment_index_maintenance,
    experiment_index_sublinearity,
    experiment_may_must_correctness,
)
from repro.experiments.optimality import table_online_vs_offline
from repro.experiments.robustness import table_noise_robustness
from repro.experiments.index_tuning import table_slab_tuning
from repro.experiments.extensions import (
    table_adaptive_policy,
    table_horizon_policy,
    table_route_change,
    table_xy_vs_route,
)

__all__ = [
    "SweepSpec",
    "run_policy_sweep",
    "figure_messages",
    "figure_total_cost",
    "figure_uncertainty",
    "figure_bound_shapes",
    "table_update_savings",
    "table_example1",
    "table_threshold_algebra",
    "table_predictor_ablation",
    "table_delay_ablation",
    "experiment_index_sublinearity",
    "experiment_may_must_correctness",
    "experiment_index_maintenance",
    "table_horizon_policy",
    "table_adaptive_policy",
    "table_xy_vs_route",
    "table_route_change",
    "table_online_vs_offline",
    "table_noise_robustness",
    "table_slab_tuning",
]
