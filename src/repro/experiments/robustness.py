"""E18: robustness of the §3.3 bounds to GPS measurement noise.

Sweeps the sensor-error magnitude ``epsilon`` and counts, per run, the
ticks where the *actual* deviation escapes the DBMS-side bound — with
the naive (clean-model) bound and with the ``+2 epsilon`` inflation.
The inflated bound must stay sound at every noise level; the naive
bound starts leaking as ``epsilon`` grows.
"""

from __future__ import annotations

import random

from repro.core.policies import make_policy
from repro.experiments.tables import TableResult
from repro.sim.noise import simulate_trip_with_noise
from repro.sim.speed_curves import standard_curve_set
from repro.sim.trip import Trip


def table_noise_robustness(epsilons: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1),
                           update_cost: float = 5.0,
                           policy_name: str = "ail",
                           num_curves: int = 5, duration: float = 30.0,
                           seed: int = 53,
                           dt: float = 1.0 / 30.0) -> TableResult:
    """Violation accounting per noise level, naive vs. inflated bounds."""
    rng = random.Random(seed)
    curves = standard_curve_set(rng, count=num_curves, duration=duration)
    trips = [Trip.synthetic(c, route_id=f"noise-{i}")
             for i, c in enumerate(curves)]
    rows: list[list[object]] = []
    for epsilon in epsilons:
        naive_violations = 0
        inflated_violations = 0
        ticks = 0
        updates = 0
        for i, trip in enumerate(trips):
            naive = simulate_trip_with_noise(
                trip, make_policy(policy_name, update_cost), epsilon,
                seed=seed + i, dt=dt, inflate_bounds=False,
            )
            inflated = simulate_trip_with_noise(
                trip, make_policy(policy_name, update_cost), epsilon,
                seed=seed + i, dt=dt, inflate_bounds=True,
            )
            naive_violations += naive.violations
            inflated_violations += inflated.violations
            ticks += naive.ticks
            updates += inflated.num_updates
        rows.append(
            [
                epsilon,
                updates / num_curves,
                naive_violations,
                inflated_violations,
                naive_violations / ticks,
            ]
        )
    return TableResult(
        experiment_id="E18",
        title=(
            f"Bound soundness under GPS noise ({policy_name}, C={update_cost})"
        ),
        headers=["epsilon (mi)", "messages/trip", "naive violations",
                 "inflated violations", "naive violation rate"],
        rows=rows,
    )

__all__ = [
    "table_noise_robustness",
]
