"""Indexing experiments (E7, E8, E12).

* E7 — sublinearity: examined candidates per range query under the
  time-space index vs. the linear scan, across fleet sizes.
* E8 — may/must correctness: every must-object is truly inside the
  query region; no object outside the may-set is inside (soundness of
  Theorems 5–6 plus the conservative o-plane decomposition).
* E12 — index maintenance: boxes removed/inserted per position update
  (the §4.2 o-plane swap), plus tree statistics.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.dbms.database import MovingObjectDatabase
from repro.errors import ExperimentError
from repro.experiments.tables import TableResult
from repro.index.rtree import SearchStats
from repro.index.scan import LinearScanIndex
from repro.index.timespace import TimeSpaceIndex
from repro.routes.generators import grid_city_network
from repro.sim.fleet import FleetSimulation
from repro.sim.speed_curves import CityCurve, HighwayCurve, SpeedCurve
from repro.sim.trip import Trip
from repro.workloads.query_workloads import polygon_query_workload


@dataclass
class _BuiltFleet:
    database: MovingObjectDatabase
    fleet: FleetSimulation
    network: object
    end_time: float


def _build_fleet(num_objects: int, seed: int, use_index: bool,
                 duration: float = 10.0, dt: float = 1.0 / 30.0,
                 policy_name: str = "ail",
                 update_cost: float = 5.0) -> _BuiltFleet:
    """A grid-city fleet, simulated to ``duration`` minutes.

    A coarser tick than the policy experiments keeps large fleets fast;
    the indexing results do not depend on tick resolution.
    """
    from repro.core.policies import make_policy

    if num_objects < 1:
        raise ExperimentError("need at least one object")
    rng = random.Random(seed)
    # The grid must be large enough that random shortest paths can host
    # the longest trips (~0.8 mi/min highway cruise for the full run).
    blocks_for_trips = int(0.8 * duration / 0.25) + 4
    blocks = max(16, blocks_for_trips, int(num_objects ** 0.5) * 4)
    network = grid_city_network(blocks_x=blocks, blocks_y=blocks,
                                block_miles=0.25)
    index = TimeSpaceIndex() if use_index else LinearScanIndex()
    database = MovingObjectDatabase(index=index, horizon=duration * 2)
    database.schema.define_mobile_point_class("vehicle")
    fleet = FleetSimulation(database, dt=dt)
    for i in range(num_objects):
        curve: SpeedCurve = (
            CityCurve(duration, rng, cruise=rng.uniform(0.3, 0.6))
            if i % 2 == 0
            else HighwayCurve(duration, rng, cruise=rng.uniform(0.4, 0.8))
        )
        needed = curve.mean_speed() * curve.duration * 1.02 + 0.1
        route = network.random_route(rng, min_length=needed,
                                     max_attempts=256)
        trip = Trip(route, curve)
        fleet.add_vehicle(
            f"vehicle-{i}", "vehicle", trip,
            make_policy(policy_name, update_cost),
        )
    fleet.run()
    return _BuiltFleet(
        database=database, fleet=fleet, network=network, end_time=duration
    )


def experiment_index_sublinearity(fleet_sizes: tuple[int, ...] = (100, 400, 1600),
                                  queries_per_size: int = 20,
                                  seed: int = 5) -> TableResult:
    """E7: candidates examined per query, index vs. linear scan."""
    rows: list[list[object]] = []
    for size in fleet_sizes:
        built = _build_fleet(size, seed, use_index=True)
        rng = random.Random(seed + size)
        polygons = polygon_query_workload(
            built.network, rng, queries_per_size, side_miles=(1.0, 2.0)
        )
        t = built.end_time
        examined_total = 0
        entries_total = 0
        answer_total = 0
        started = time.perf_counter()
        for polygon in polygons:
            stats = SearchStats()
            answer = built.database.range_query(polygon, t, stats)
            examined_total += answer.examined
            entries_total += stats.entries_tested
            answer_total += len(answer.may)
        index_seconds = time.perf_counter() - started
        rows.append(
            [
                size,
                examined_total / queries_per_size,
                size,  # linear scan examines everything, by definition
                (examined_total / queries_per_size) / size,
                answer_total / queries_per_size,
                index_seconds / queries_per_size * 1000.0,
            ]
        )
    return TableResult(
        experiment_id="E7",
        title="Range-query candidates: time-space index vs. linear scan",
        headers=["fleet size", "index candidates/query", "scan candidates/query",
                 "fraction examined", "avg |may|", "index ms/query"],
        rows=rows,
    )


def experiment_may_must_correctness(num_objects: int = 150,
                                    num_queries: int = 40,
                                    seed: int = 9) -> TableResult:
    """E8: validate may/must answers against ground truth."""
    built = _build_fleet(num_objects, seed, use_index=True)
    rng = random.Random(seed + 1)
    polygons = polygon_query_workload(
        built.network, rng, num_queries, side_miles=(1.0, 3.0)
    )
    t = built.end_time
    must_checked = 0
    may_checked = 0
    violations = 0
    inside_total = 0
    for polygon in polygons:
        answer = built.database.range_query(polygon, t)
        for object_id in built.database.object_ids():
            actual = built.fleet.actual_position(object_id, t)
            inside = polygon.contains_point(actual)
            inside_total += int(inside)
            if object_id in answer.must:
                must_checked += 1
                if not inside:
                    violations += 1
            elif object_id not in answer.may:
                may_checked += 1
                if inside:
                    violations += 1
    return TableResult(
        experiment_id="E8",
        title="May/must soundness vs. ground truth",
        headers=["quantity", "value"],
        rows=[
            ["queries", num_queries],
            ["objects", num_objects],
            ["must answers verified inside", must_checked],
            ["excluded objects verified outside", may_checked],
            ["ground-truth inside occurrences", inside_total],
            ["violations", violations],
        ],
    )


def experiment_index_maintenance(num_objects: int = 200,
                                 seed: int = 13) -> TableResult:
    """E12: cost of the §4.2 o-plane swap on position updates."""
    built = _build_fleet(num_objects, seed, use_index=True)
    index: TimeSpaceIndex = built.database._index
    tree = index.tree
    tree.check_invariants()
    total_messages = built.database.update_log.total_messages
    # Replay one object's current plane to measure a single swap.
    object_id = built.database.object_ids()[0]
    plane = built.database.oplane_of(object_id)
    # force=True: the plane is unchanged, so an unforced replace
    # would short-circuit; the experiment measures a full swap.
    swap = index.replace(object_id, plane, force=True)
    return TableResult(
        experiment_id="E12",
        title="Time-space index maintenance",
        headers=["quantity", "value"],
        rows=[
            ["objects indexed", len(index)],
            ["slab boxes stored", index.total_boxes()],
            ["tree height", tree.height],
            ["tree nodes", tree.node_count()],
            ["updates processed", total_messages],
            ["boxes removed per swap", swap.boxes_removed],
            ["boxes inserted per swap", swap.boxes_inserted],
        ],
    )

__all__ = [
    "experiment_index_maintenance",
    "experiment_index_sublinearity",
    "experiment_may_must_correctness",
]
