"""Piecewise-linear polylines — the geometric substance of routes.

The paper (§2) assumes "the route is given by a piece-wise linear
function" and relies on two primitives being "straightforward to
compute": the route-distance between two points on the route, and the
point at a given route-distance from another point.  ``Polyline``
provides exactly those, plus projection of an arbitrary plane point onto
the polyline (used when snapping noisy positions to a route) and
sub-polyline extraction (used to materialise uncertainty intervals).

Arc-length parametrisation
--------------------------
A polyline with vertices ``v0 .. vn`` is parametrised by cumulative
Euclidean arc length ``s`` in ``[0, length]``.  All distance arguments
below are arc lengths in canonical miles.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.bbox import Rect2D
from repro.geometry.point import EPSILON, Point
from repro.geometry.segment import Segment


class Polyline:
    """An immutable piecewise-linear curve with arc-length queries."""

    __slots__ = ("_vertices", "_cumulative", "_length")

    def __init__(self, vertices: Iterable[Point]) -> None:
        verts = tuple(vertices)
        if len(verts) < 2:
            raise GeometryError("a polyline needs at least two vertices")
        cumulative = [0.0]
        for a, b in zip(verts, verts[1:]):
            cumulative.append(cumulative[-1] + a.distance_to(b))
        if cumulative[-1] <= EPSILON:
            raise GeometryError("a polyline must have positive length")
        self._vertices = verts
        self._cumulative = cumulative
        self._length = cumulative[-1]

    @classmethod
    def from_coordinates(cls, coords: Iterable[tuple[float, float]]) -> "Polyline":
        """Build a polyline from ``(x, y)`` tuples."""
        return cls(Point(x, y) for x, y in coords)

    @property
    def vertices(self) -> tuple[Point, ...]:
        """The polyline's vertices, in order."""
        return self._vertices

    @property
    def length(self) -> float:
        """Total arc length."""
        return self._length

    @property
    def start(self) -> Point:
        return self._vertices[0]

    @property
    def end(self) -> Point:
        return self._vertices[-1]

    def segments(self) -> list[Segment]:
        """The polyline's constituent segments, in order."""
        return [
            Segment(a, b) for a, b in zip(self._vertices, self._vertices[1:])
        ]

    def bounding_rect(self) -> Rect2D:
        """The tightest axis-aligned rectangle containing the polyline."""
        return Rect2D.from_points(self._vertices)

    def _segment_index_at(self, distance: float) -> int:
        """Index of the segment containing arc length ``distance``."""
        # bisect_right puts ties after equal cumulative values, so a
        # distance exactly at a vertex resolves to the following segment
        # (except at the very end).
        idx = bisect.bisect_right(self._cumulative, distance) - 1
        return min(max(idx, 0), len(self._vertices) - 2)

    def point_at(self, distance: float) -> Point:
        """The point at arc length ``distance`` from the start.

        ``distance`` is clamped to ``[0, length]`` — the paper's vehicles
        never leave their route, and clamping makes dead-reckoned
        positions that slightly overshoot the route end well defined.
        """
        distance = min(max(distance, 0.0), self._length)
        idx = self._segment_index_at(distance)
        seg_start = self._cumulative[idx]
        segment = Segment(self._vertices[idx], self._vertices[idx + 1])
        return segment.point_at_distance(distance - seg_start)

    def tangent_at(self, distance: float) -> Point:
        """Unit tangent vector at arc length ``distance``.

        At a vertex the tangent of the *following* segment is returned
        (the direction of travel out of the corner); at the end of the
        polyline, the last segment's direction.
        """
        distance = min(max(distance, 0.0), self._length)
        idx = self._segment_index_at(distance)
        a, b = self._vertices[idx], self._vertices[idx + 1]
        direction = b - a
        norm = direction.norm()
        if norm <= EPSILON:
            return Point(1.0, 0.0)
        return Point(direction.x / norm, direction.y / norm)

    def project(self, point: Point) -> tuple[float, float]:
        """Project ``point`` onto the polyline.

        Returns ``(arc_length, euclidean_distance)`` of the closest point
        on the polyline to ``point``.
        """
        best_arc = 0.0
        best_dist = float("inf")
        for idx, segment in enumerate(self.segments()):
            fraction = segment.project_fraction(point)
            candidate = segment.point_at_fraction(fraction)
            dist = candidate.distance_to(point)
            if dist < best_dist - EPSILON:
                best_dist = dist
                best_arc = self._cumulative[idx] + fraction * segment.length
        return best_arc, best_dist

    def arc_length_of(self, point: Point, tolerance: float = 1e-6) -> float:
        """Arc length of a point assumed to lie on the polyline.

        Raises :class:`GeometryError` when ``point`` is farther than
        ``tolerance`` from the polyline.
        """
        arc, dist = self.project(point)
        if dist > tolerance:
            raise GeometryError(
                f"point ({point.x}, {point.y}) is {dist:.6g} miles off the polyline"
            )
        return arc

    def route_distance(self, p1: Point, p2: Point, tolerance: float = 1e-6) -> float:
        """Route-distance between two on-route points (paper §2).

        The distance along the route between ``p1`` and ``p2``; always
        nonnegative.
        """
        return abs(
            self.arc_length_of(p1, tolerance) - self.arc_length_of(p2, tolerance)
        )

    def subline(self, from_distance: float, to_distance: float) -> "Polyline":
        """The sub-polyline between two arc lengths (order-insensitive).

        Used to materialise an uncertainty interval as geometry.  Both
        arguments are clamped to ``[0, length]``; a numerically empty
        interval yields a tiny two-point polyline at the location.
        """
        lo = min(max(min(from_distance, to_distance), 0.0), self._length)
        hi = min(max(max(from_distance, to_distance), 0.0), self._length)
        start_point = self.point_at(lo)
        end_point = self.point_at(hi)
        if hi - lo <= EPSILON:
            # Degenerate interval: return a minimal stub so callers can
            # still take bounding boxes and iterate vertices.  Prefer a
            # stub along the route; at the route's very end, fall back
            # to a tiny off-axis stub (1e-7 miles ~ 6 thousandths of an
            # inch — invisible to every consumer).
            nudge = min(lo + 1e-7, self._length)
            nudge_pt = self.point_at(nudge) if nudge > lo else start_point
            if start_point.distance_to(nudge_pt) <= EPSILON:
                nudge_pt = Point(start_point.x + 1e-7, start_point.y)
            return Polyline([start_point, nudge_pt])
        first_idx = self._segment_index_at(lo)
        last_idx = self._segment_index_at(hi)
        verts: list[Point] = [start_point]
        for idx in range(first_idx + 1, last_idx + 1):
            vertex = self._vertices[idx]
            if not verts[-1].almost_equal(vertex):
                verts.append(vertex)
        if not verts[-1].almost_equal(end_point):
            verts.append(end_point)
        if len(verts) < 2:
            verts.append(Point(end_point.x + 1e-9, end_point.y))
        return Polyline(verts)

    def resampled(self, spacing: float) -> list[Point]:
        """Points every ``spacing`` miles along the polyline (incl. both ends)."""
        if spacing <= 0:
            raise GeometryError("resample spacing must be positive")
        points = []
        s = 0.0
        while s < self._length:
            points.append(self.point_at(s))
            s += spacing
        points.append(self.end)
        return points

    def reversed(self) -> "Polyline":
        """The same curve traversed in the opposite direction."""
        return Polyline(reversed(self._vertices))

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return (
            f"Polyline({len(self._vertices)} vertices, "
            f"length={self._length:.3f})"
        )


def polyline_through(points: Sequence[tuple[float, float]]) -> Polyline:
    """Convenience constructor used pervasively in tests and examples."""
    return Polyline.from_coordinates(points)


__all__ = [
    "Polyline",
    "polyline_through",
]
