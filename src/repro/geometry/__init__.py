"""Planar geometry substrate for the moving-objects database.

This package provides the geometric primitives everything else is built
on: 2-D points and segments, axis-aligned 2-D/3-D boxes, piecewise-linear
polylines (the paper's *routes*, §2), and simple polygons (the paper's
range-query regions, §4).

All coordinates are floats in canonical units (miles; see
:mod:`repro.units`).  The primitives are immutable value objects so they
can be shared freely between the simulator, the DBMS and the index.
"""

from repro.geometry.bbox import Box3D, Rect2D
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment

__all__ = [
    "Point",
    "Segment",
    "Rect2D",
    "Box3D",
    "Polyline",
    "Polygon",
]
