"""2-D points with the small vector algebra the rest of the library needs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

#: Absolute tolerance used when comparing coordinates or distances.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point (or free vector) in the plane.

    Supports the vector operations used throughout the geometry package:
    addition, subtraction, scalar multiplication, dot product, Euclidean
    norm and distance, and linear interpolation.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product of ``self`` and ``other`` viewed as vectors."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """2-D cross product (z component of the 3-D cross product)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of ``self`` viewed as a vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def lerp(self, other: "Point", fraction: float) -> "Point":
        """The point ``fraction`` of the way from ``self`` to ``other``.

        ``fraction`` is not clamped; values outside [0, 1] extrapolate.
        """
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def almost_equal(self, other: "Point", tolerance: float = EPSILON) -> bool:
        """True when both coordinates agree within ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance
            and abs(self.y - other.y) <= tolerance
        )

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


__all__ = [
    "EPSILON",
    "Point",
]
