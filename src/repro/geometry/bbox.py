"""Axis-aligned bounding boxes in two and three dimensions.

``Rect2D`` bounds planar geometry; ``Box3D`` bounds regions of the
paper's (x, y, t) time-space and is the key type stored in the 3-D
R-tree (:mod:`repro.index.rtree`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect2D:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted Rect2D: ({self.min_x}, {self.min_y}) ... "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect2D":
        """The tightest rectangle containing every point in ``points``."""
        pts = list(points)
        if not pts:
            raise GeometryError("Rect2D.from_points requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "Rect2D") -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def contains_rect(self, other: "Rect2D") -> bool:
        """True when ``other`` lies entirely inside this closed rectangle."""
        return (
            self.min_x <= other.min_x
            and other.max_x <= self.max_x
            and self.min_y <= other.min_y
            and other.max_y <= self.max_y
        )

    def union(self, other: "Rect2D") -> "Rect2D":
        """The tightest rectangle containing both rectangles."""
        return Rect2D(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rect2D":
        """The rectangle grown by ``margin`` on every side."""
        return Rect2D(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


@dataclass(frozen=True, slots=True)
class Box3D:
    """An axis-aligned box in (x, y, t) time-space.

    The third axis is time; a planar region "at time t0" (the paper's
    ``R_G(t0)``) is represented as a box with ``min_t == max_t == t0``.
    """

    min_x: float
    min_y: float
    min_t: float
    max_x: float
    max_y: float
    max_t: float

    def __post_init__(self) -> None:
        if (
            self.min_x > self.max_x
            or self.min_y > self.max_y
            or self.min_t > self.max_t
        ):
            raise GeometryError(
                f"inverted Box3D: ({self.min_x}, {self.min_y}, {self.min_t}) ... "
                f"({self.max_x}, {self.max_y}, {self.max_t})"
            )

    @classmethod
    def from_rect(cls, rect: Rect2D, min_t: float, max_t: float) -> "Box3D":
        """A time-extruded box covering ``rect`` during ``[min_t, max_t]``."""
        return cls(rect.min_x, rect.min_y, min_t, rect.max_x, rect.max_y, max_t)

    @property
    def rect(self) -> Rect2D:
        """The spatial footprint of the box."""
        return Rect2D(self.min_x, self.min_y, self.max_x, self.max_y)

    @property
    def volume(self) -> float:
        """Product of the three extents (zero for slabs and planes)."""
        return (
            (self.max_x - self.min_x)
            * (self.max_y - self.min_y)
            * (self.max_t - self.min_t)
        )

    @property
    def margin(self) -> float:
        """Sum of the three extents (the R-tree's perimeter surrogate)."""
        return (
            (self.max_x - self.min_x)
            + (self.max_y - self.min_y)
            + (self.max_t - self.min_t)
        )

    def intersects(self, other: "Box3D") -> bool:
        """True when the closed boxes share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
            and self.min_t <= other.max_t
            and other.min_t <= self.max_t
        )

    def contains(self, other: "Box3D") -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.min_t <= other.min_t
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
            and self.max_t >= other.max_t
        )

    def union(self, other: "Box3D") -> "Box3D":
        """The tightest box containing both boxes."""
        return Box3D(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            min(self.min_t, other.min_t),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
            max(self.max_t, other.max_t),
        )

    def union_volume_increase(self, other: "Box3D") -> float:
        """Volume added to ``self`` by enlarging it to cover ``other``.

        This is the R-tree's ChooseLeaf criterion.
        """
        return self.union(other).volume - self.volume

    def contains_point(self, x: float, y: float, t: float) -> bool:
        """True when the point ``(x, y, t)`` lies inside or on the boundary."""
        return (
            self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
            and self.min_t <= t <= self.max_t
        )


__all__ = [
    "Box3D",
    "Rect2D",
]
