"""Simple polygons — the range-query regions of the paper's §4.

Queries of the form "retrieve the objects whose current position is in
the polygon G" need three geometric predicates, all provided here:

* point containment (is a dead-reckoned position inside G?),
* segment intersection (does an uncertainty interval *touch* G? — the
  paper's **may be in** semantics, Theorem 5),
* segment containment (is an uncertainty interval *entirely inside* G?
  — the **must be in** semantics, Theorem 6).

Polygons are simple (non-self-intersecting), given by their boundary
vertices in either orientation, and treated as closed regions (boundary
points count as inside).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GeometryError
from repro.geometry.bbox import Rect2D
from repro.geometry.point import EPSILON, Point
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


class Polygon:
    """An immutable simple polygon with containment/intersection queries."""

    __slots__ = ("_vertices", "_bbox")

    def __init__(self, vertices: Iterable[Point]) -> None:
        verts = tuple(vertices)
        if len(verts) >= 2 and verts[0].almost_equal(verts[-1]):
            verts = verts[:-1]
        if len(verts) < 3:
            raise GeometryError("a polygon needs at least three distinct vertices")
        self._vertices = verts
        self._bbox = Rect2D.from_points(verts)

    @classmethod
    def from_coordinates(cls, coords: Iterable[tuple[float, float]]) -> "Polygon":
        """Build a polygon from ``(x, y)`` tuples."""
        return cls(Point(x, y) for x, y in coords)

    @classmethod
    def rectangle(cls, min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """An axis-aligned rectangular polygon."""
        if min_x >= max_x or min_y >= max_y:
            raise GeometryError("rectangle needs min < max on both axes")
        return cls(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    @property
    def bounding_rect(self) -> Rect2D:
        """The tightest axis-aligned rectangle containing the polygon."""
        return self._bbox

    def edges(self) -> list[Segment]:
        """The polygon's boundary segments, in order, closing the ring."""
        verts = self._vertices
        return [
            Segment(verts[i], verts[(i + 1) % len(verts)])
            for i in range(len(verts))
        ]

    def area(self) -> float:
        """Unsigned polygon area via the shoelace formula."""
        total = 0.0
        verts = self._vertices
        for i in range(len(verts)):
            a = verts[i]
            b = verts[(i + 1) % len(verts)]
            total += a.cross(b)
        return abs(total) / 2.0

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside the polygon or on its boundary.

        Uses the even-odd ray-casting rule with an explicit boundary check
        so that boundary points are deterministically *inside* (the paper
        treats regions as closed).
        """
        if not self._bbox.contains_point(point):
            return False
        for edge in self.edges():
            if edge.distance_to_point(point) <= EPSILON:
                return True
        inside = False
        x, y = point.x, point.y
        verts = self._vertices
        j = len(verts) - 1
        for i in range(len(verts)):
            xi, yi = verts[i].x, verts[i].y
            xj, yj = verts[j].x, verts[j].y
            if (yi > y) != (yj > y):
                x_cross = xi + (y - yi) * (xj - xi) / (yj - yi)
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_segment(self, segment: Segment) -> bool:
        """True when the closed polygon region touches the segment.

        This is the geometric core of Theorem 5 ("may be in"): an
        uncertainty interval intersects G iff either an endpoint lies in
        G or the interval crosses G's boundary.
        """
        if self.contains_point(segment.start) or self.contains_point(segment.end):
            return True
        return any(edge.intersects(segment) for edge in self.edges())

    def contains_segment(self, segment: Segment) -> bool:
        """True when the whole segment lies inside the closed polygon.

        For a *convex* polygon, endpoint containment suffices.  For
        general simple polygons the segment might dip outside between
        contained endpoints, so we additionally check midpoints of the
        pieces cut by boundary crossings.
        """
        if not (
            self.contains_point(segment.start) and self.contains_point(segment.end)
        ):
            return False
        # Collect boundary-crossing parameters along the segment.
        crossings: list[float] = [0.0, 1.0]
        direction = segment.end - segment.start
        seg_len2 = direction.dot(direction)
        for edge in self.edges():
            hit = segment.intersection_point(edge)
            if hit is None:
                continue
            if seg_len2 <= EPSILON * EPSILON:
                continue
            t = (hit - segment.start).dot(direction) / seg_len2
            crossings.append(min(1.0, max(0.0, t)))
        crossings.sort()
        for t0, t1 in zip(crossings, crossings[1:]):
            if t1 - t0 <= EPSILON:
                continue
            midpoint = segment.point_at_fraction((t0 + t1) / 2.0)
            if not self.contains_point(midpoint):
                return False
        return True

    def intersects_polyline(self, polyline: Polyline) -> bool:
        """True when any part of ``polyline`` touches the closed polygon."""
        if not self._bbox.intersects(polyline.bounding_rect()):
            return False
        return any(self.intersects_segment(seg) for seg in polyline.segments())

    def contains_polyline(self, polyline: Polyline) -> bool:
        """True when the whole ``polyline`` lies inside the closed polygon."""
        return all(self.contains_segment(seg) for seg in polyline.segments())

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.3f})"


__all__ = [
    "Polygon",
]
