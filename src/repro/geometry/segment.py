"""Line segments: projection, intersection, and distance queries.

Segments are the building block of routes (piecewise-linear polylines)
and of polygon boundaries.  The operations here are deliberately robust
for the well-conditioned inputs the simulator produces; degenerate
segments (zero length) are accepted and treated as points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import EPSILON, Point


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def is_degenerate(self) -> bool:
        """True when the segment has (numerically) zero length."""
        return self.length <= EPSILON

    def point_at_fraction(self, fraction: float) -> Point:
        """The point ``fraction`` of the way along the segment.

        ``fraction`` outside [0, 1] extrapolates along the segment's line.
        """
        return self.start.lerp(self.end, fraction)

    def point_at_distance(self, distance: float) -> Point:
        """The point at Euclidean ``distance`` from ``start`` along the segment.

        A degenerate segment returns its single point for any distance.
        """
        length = self.length
        if length <= EPSILON:
            return self.start
        return self.point_at_fraction(distance / length)

    def project_fraction(self, point: Point) -> float:
        """Fraction in [0, 1] of the closest point on the segment to ``point``."""
        direction = self.end - self.start
        denom = direction.dot(direction)
        if denom <= EPSILON * EPSILON:
            return 0.0
        raw = (point - self.start).dot(direction) / denom
        return min(1.0, max(0.0, raw))

    def closest_point(self, point: Point) -> Point:
        """The point on the segment closest to ``point``."""
        return self.point_at_fraction(self.project_fraction(point))

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the segment."""
        return self.closest_point(point).distance_to(point)

    def distance_to_segment(self, other: "Segment") -> float:
        """Minimum Euclidean distance between two closed segments.

        Zero when they intersect; otherwise the minimum is attained at
        an endpoint of one segment projected onto the other, so four
        endpoint-to-segment distances cover all cases.
        """
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.start),
            self.distance_to_point(other.end),
            other.distance_to_point(self.start),
            other.distance_to_point(self.end),
        )

    def intersects(self, other: "Segment") -> bool:
        """True when the two closed segments share at least one point."""
        return self.intersection_point(other) is not None or self._overlaps_collinear(other)

    def intersection_point(self, other: "Segment") -> Point | None:
        """The unique intersection point of two segments, if there is one.

        Returns ``None`` when the segments do not intersect *or* when they
        are collinear and overlap in more than a single point (no unique
        answer); use :meth:`intersects` for a pure predicate.
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        r_cross_s = r.cross(s)
        q_minus_p = q - p
        if abs(r_cross_s) <= EPSILON:
            return None
        t = q_minus_p.cross(s) / r_cross_s
        u = q_minus_p.cross(r) / r_cross_s
        if -EPSILON <= t <= 1.0 + EPSILON and -EPSILON <= u <= 1.0 + EPSILON:
            return p + r * t
        return None

    def _overlaps_collinear(self, other: "Segment") -> bool:
        """True when the segments are collinear and their ranges overlap."""
        r = self.end - self.start
        s = other.end - other.start
        if abs(r.cross(s)) > EPSILON:
            return False
        # The separation vector must be parallel to the (non-degenerate)
        # direction; when both segments are points, require coincidence.
        axis = r if r.norm() > EPSILON else s
        if axis.norm() <= EPSILON:
            return self.start.almost_equal(other.start)
        if abs((other.start - self.start).cross(axis)) > EPSILON:
            return False
        if abs(axis.x) >= abs(axis.y):
            a0, a1 = sorted((self.start.x, self.end.x))
            b0, b1 = sorted((other.start.x, other.end.x))
        else:
            a0, a1 = sorted((self.start.y, self.end.y))
            b0, b1 = sorted((other.start.y, other.end.y))
        return a0 <= b1 + EPSILON and b0 <= a1 + EPSILON

    def midpoint(self) -> Point:
        """The midpoint of the segment."""
        return self.start.lerp(self.end, 0.5)

    def heading(self) -> float:
        """Heading of the segment in radians, measured from the +x axis.

        Degenerate segments return 0.0.
        """
        if self.is_degenerate:
            return 0.0
        d = self.end - self.start
        return math.atan2(d.y, d.x)


__all__ = [
    "Segment",
]
