"""Ready-made workload scenarios from the paper's introduction.

* :func:`taxi_fleet_scenario` — city cabs on a Manhattan grid ("retrieve
  the free cabs that are currently within 1 mile of 33 N. Michigan
  Ave."),
* :func:`trucking_scenario` — long-haul trucks on a radial highway
  network ("retrieve the trucks that are currently within 1 mile of
  truck ABT312"),
* :func:`battlefield_scenario` — units on an irregular random network
  ("retrieve the friendly helicopters that are currently in a given
  region"),
* :func:`polygon_query_workload` — a randomized stream of range-query
  polygons over a network's extent,
* :func:`mixed_query_workload` — a batched serving workload mixing
  position, range, and within-distance queries for the
  :class:`~repro.dbms.batch.BatchQueryEngine`.
"""

from repro.workloads.scenarios import (
    FleetScenario,
    battlefield_scenario,
    taxi_fleet_scenario,
    trucking_scenario,
)
from repro.workloads.query_workloads import (
    mixed_query_workload,
    polygon_query_workload,
    within_distance_workload,
)

__all__ = [
    "FleetScenario",
    "taxi_fleet_scenario",
    "trucking_scenario",
    "battlefield_scenario",
    "polygon_query_workload",
    "within_distance_workload",
    "mixed_query_workload",
]
