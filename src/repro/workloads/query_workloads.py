"""Randomized query workloads over a network's extent.

Generators for the two query shapes the paper's applications use:
rectangular region queries ("the objects currently in polygon G") and
within-distance queries ("the cabs within 1 mile of an address").  Both
draw query centres uniformly over the network's bounding extent with
seeded randomness, so benchmark runs are reproducible.

:func:`mixed_query_workload` composes position, range, and
within-distance queries into one batch-engine workload — the shape a
serving tier sees — with query times drawn from a small set of
instants so the uncertainty cache has sharing to exploit.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.dbms.batch import (
    BatchQuery,
    PositionQuery,
    RangeQuery,
    WithinDistanceQuery,
)
from repro.errors import ExperimentError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.routes.network import RouteNetwork


def polygon_query_workload(network: RouteNetwork, rng: random.Random,
                           count: int,
                           side_miles: tuple[float, float] = (1.0, 4.0)) -> list[Polygon]:
    """``count`` random rectangular query regions over the network.

    Each region is an axis-aligned rectangle with side lengths drawn
    from ``side_miles``, centred uniformly over the network extent.
    """
    if count < 1:
        raise ExperimentError(f"count must be positive, got {count}")
    lo, hi = side_miles
    if not 0 < lo <= hi:
        raise ExperimentError(f"invalid side range {side_miles}")
    min_x, min_y, max_x, max_y = network.bounding_extent()
    polygons = []
    for _ in range(count):
        width = rng.uniform(lo, hi)
        height = rng.uniform(lo, hi)
        cx = rng.uniform(min_x, max_x)
        cy = rng.uniform(min_y, max_y)
        polygons.append(
            Polygon.rectangle(
                cx - width / 2.0, cy - height / 2.0,
                cx + width / 2.0, cy + height / 2.0,
            )
        )
    return polygons


def within_distance_workload(network: RouteNetwork, rng: random.Random,
                             count: int,
                             radius_miles: tuple[float, float] = (0.5, 2.0)) -> list[tuple[Point, float]]:
    """``count`` random ``(center, radius)`` within-distance queries."""
    if count < 1:
        raise ExperimentError(f"count must be positive, got {count}")
    lo, hi = radius_miles
    if not 0 < lo <= hi:
        raise ExperimentError(f"invalid radius range {radius_miles}")
    min_x, min_y, max_x, max_y = network.bounding_extent()
    queries = []
    for _ in range(count):
        center = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
        queries.append((center, rng.uniform(lo, hi)))
    return queries


def mixed_query_workload(network: RouteNetwork, rng: random.Random,
                         count: int, object_ids: Sequence[str],
                         times: Sequence[float],
                         mix: tuple[float, float, float] = (0.2, 0.5, 0.3),
                         side_miles: tuple[float, float] = (1.0, 4.0),
                         radius_miles: tuple[float, float] = (0.5, 2.0)) -> list[BatchQuery]:
    """``count`` mixed position/range/within-distance queries.

    ``mix`` gives the relative weights of the three kinds (position,
    range, within-distance); ``times`` is the set of query instants the
    workload draws from (a serving workload clusters around "now", so a
    small set is realistic and is what gives caching leverage).  The
    result is consumable by
    :class:`~repro.dbms.batch.BatchQueryEngine.run` or answerable
    one-at-a-time for equivalence checks.
    """
    if count < 1:
        raise ExperimentError(f"count must be positive, got {count}")
    if not times:
        raise ExperimentError("times must be non-empty")
    if len(mix) != 3 or any(w < 0 for w in mix) or sum(mix) <= 0:
        raise ExperimentError(f"invalid query mix {mix}")
    if mix[0] > 0 and not object_ids:
        raise ExperimentError(
            "position queries requested but object_ids is empty"
        )
    side_lo, side_hi = side_miles
    if not 0 < side_lo <= side_hi:
        raise ExperimentError(f"invalid side range {side_miles}")
    radius_lo, radius_hi = radius_miles
    if not 0 < radius_lo <= radius_hi:
        raise ExperimentError(f"invalid radius range {radius_miles}")
    min_x, min_y, max_x, max_y = network.bounding_extent()
    kinds = rng.choices(("position", "range", "within"),
                        weights=mix, k=count)
    queries: list[BatchQuery] = []
    for kind in kinds:
        t = rng.choice(times)
        if kind == "position":
            queries.append(PositionQuery(rng.choice(object_ids), t))
            continue
        cx = rng.uniform(min_x, max_x)
        cy = rng.uniform(min_y, max_y)
        if kind == "range":
            width = rng.uniform(side_lo, side_hi)
            height = rng.uniform(side_lo, side_hi)
            queries.append(RangeQuery(
                Polygon.rectangle(
                    cx - width / 2.0, cy - height / 2.0,
                    cx + width / 2.0, cy + height / 2.0,
                ),
                t,
            ))
        else:
            queries.append(WithinDistanceQuery(
                Point(cx, cy), rng.uniform(radius_lo, radius_hi), t,
            ))
    return queries

__all__ = [
    "mixed_query_workload",
    "polygon_query_workload",
    "within_distance_workload",
]
