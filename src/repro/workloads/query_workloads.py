"""Randomized query workloads over a network's extent.

Generators for the two query shapes the paper's applications use:
rectangular region queries ("the objects currently in polygon G") and
within-distance queries ("the cabs within 1 mile of an address").  Both
draw query centres uniformly over the network's bounding extent with
seeded randomness, so benchmark runs are reproducible.
"""

from __future__ import annotations

import random

from repro.errors import ExperimentError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.routes.network import RouteNetwork


def polygon_query_workload(network: RouteNetwork, rng: random.Random,
                           count: int,
                           side_miles: tuple[float, float] = (1.0, 4.0)) -> list[Polygon]:
    """``count`` random rectangular query regions over the network.

    Each region is an axis-aligned rectangle with side lengths drawn
    from ``side_miles``, centred uniformly over the network extent.
    """
    if count < 1:
        raise ExperimentError(f"count must be positive, got {count}")
    lo, hi = side_miles
    if not 0 < lo <= hi:
        raise ExperimentError(f"invalid side range {side_miles}")
    min_x, min_y, max_x, max_y = network.bounding_extent()
    polygons = []
    for _ in range(count):
        width = rng.uniform(lo, hi)
        height = rng.uniform(lo, hi)
        cx = rng.uniform(min_x, max_x)
        cy = rng.uniform(min_y, max_y)
        polygons.append(
            Polygon.rectangle(
                cx - width / 2.0, cy - height / 2.0,
                cx + width / 2.0, cy + height / 2.0,
            )
        )
    return polygons


def within_distance_workload(network: RouteNetwork, rng: random.Random,
                             count: int,
                             radius_miles: tuple[float, float] = (0.5, 2.0)) -> list[tuple[Point, float]]:
    """``count`` random ``(center, radius)`` within-distance queries."""
    if count < 1:
        raise ExperimentError(f"count must be positive, got {count}")
    lo, hi = radius_miles
    if not 0 < lo <= hi:
        raise ExperimentError(f"invalid radius range {radius_miles}")
    min_x, min_y, max_x, max_y = network.bounding_extent()
    queries = []
    for _ in range(count):
        center = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
        queries.append((center, rng.uniform(lo, hi)))
    return queries
