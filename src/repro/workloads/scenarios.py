"""Fleet scenarios: networks + trips + policies, ready to simulate.

Each scenario builder returns a :class:`FleetScenario` bundling a
database (with schema and optional index), a fleet simulation with
vehicles added, and the network it runs on.  Scenarios differ in
network shape, speed-curve regimes, and fleet size — mirroring the
paper's three motivating applications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.policies import make_policy
from repro.dbms.database import MovingObjectDatabase
from repro.dbms.schema import AttributeDef
from repro.errors import SimulationError
from repro.index.timespace import TimeSpaceIndex
from repro.routes.network import RouteNetwork
from repro.routes.generators import (
    grid_city_network,
    radial_highway_network,
    random_network,
)
from repro.sim.fleet import FleetSimulation
from repro.sim.speed_curves import (
    CityCurve,
    HighwayCurve,
    RushHourCurve,
    SpeedCurve,
    TrafficJamCurve,
)
from repro.sim.trip import Trip
from repro.units import DEFAULT_TICK_MINUTES


#: Builds the scenario's database from its network.  Lets callers swap
#: in a :class:`~repro.shard.sharded.ShardedDatabase` (or any facade
#: with the same surface) without the scenario layer importing the
#: shard package.
DatabaseFactory = Callable[[RouteNetwork], Any]


@dataclass
class FleetScenario:
    """A fully wired scenario ready to ``fleet.run()``."""

    name: str
    network: RouteNetwork
    database: Any
    fleet: FleetSimulation


def _build_trip(network: RouteNetwork, curve: SpeedCurve,
                rng: random.Random) -> Trip:
    """A trip over a network route long enough for the curve's distance."""
    # The trip must fit the route: request the curve's integrated
    # distance plus headroom for integration differences.
    needed = curve.mean_speed() * curve.duration * 1.02 + 0.1
    route = network.random_route(rng, min_length=needed, max_attempts=256)
    return Trip(route, curve)


def _scenario(name: str, network: RouteNetwork, curves: list[SpeedCurve],
              rng: random.Random, class_name: str,
              policy_name: str, update_cost: float,
              attributes: tuple[AttributeDef, ...] = (),
              attribute_maker=None,
              use_index: bool = True,
              dt: float = DEFAULT_TICK_MINUTES,
              database_factory: DatabaseFactory | None = None) -> FleetScenario:
    if database_factory is not None:
        # The factory decides indexing for itself; use_index is the
        # default-database knob only.
        database = database_factory(network)
    else:
        index = TimeSpaceIndex() if use_index else None
        database = MovingObjectDatabase(index=index)
    database.schema.define_mobile_point_class(class_name, attributes)
    fleet = FleetSimulation(database, dt=dt)
    for i, curve in enumerate(curves):
        object_id = f"{class_name}-{i + 1}"
        trip = _build_trip(network, curve, rng)
        policy = make_policy(policy_name, update_cost)
        values = attribute_maker(i, rng) if attribute_maker else None
        fleet.add_vehicle(object_id, class_name, trip, policy, values)
    return FleetScenario(
        name=name, network=network, database=database, fleet=fleet
    )


def taxi_fleet_scenario(num_taxis: int = 20, duration: float = 30.0,
                        seed: int = 7, policy: str = "ail",
                        update_cost: float = 5.0,
                        use_index: bool = True,
                        dt: float = DEFAULT_TICK_MINUTES,
                        database_factory: DatabaseFactory | None = None,
                        ) -> FleetScenario:
    """City cabs on a Manhattan grid, stop-and-go speed curves.

    Cabs carry a ``free`` flag so the introduction's "retrieve the free
    cabs within 1 mile of ..." query can be expressed by filtering the
    range answer on the attribute table.
    """
    if num_taxis < 1:
        raise SimulationError("need at least one taxi")
    rng = random.Random(seed)
    # Size the grid so random shortest paths can host full-length trips
    # (~0.8 mi/min worst-case city cruise for the whole duration).
    blocks = max(24, int(0.8 * duration / 0.25) + 4)
    network = grid_city_network(blocks_x=blocks, blocks_y=blocks,
                                block_miles=0.25)
    curves: list[SpeedCurve] = [
        CityCurve(duration, rng, cruise=rng.uniform(0.3, 0.6))
        for _ in range(num_taxis)
    ]
    return _scenario(
        "taxi-fleet", network, curves, rng,
        class_name="taxi",
        policy_name=policy, update_cost=update_cost,
        attributes=(AttributeDef("free", "bool"),),
        attribute_maker=lambda i, r: {"free": r.random() < 0.5},
        use_index=use_index, dt=dt, database_factory=database_factory,
    )


def trucking_scenario(num_trucks: int = 15, duration: float = 45.0,
                      seed: int = 11, policy: str = "dl",
                      update_cost: float = 5.0,
                      use_index: bool = True,
                      dt: float = DEFAULT_TICK_MINUTES,
                      database_factory: DatabaseFactory | None = None,
                      ) -> FleetScenario:
    """Long-haul trucks on a radial highway network.

    Mostly steady highway curves with occasional jams — the regime
    where the dl policy's current-speed declaration shines.
    """
    if num_trucks < 1:
        raise SimulationError("need at least one truck")
    rng = random.Random(seed)
    network = radial_highway_network(spokes=8, spoke_miles=40.0)
    curves: list[SpeedCurve] = []
    for i in range(num_trucks):
        if i % 4 == 3:
            curves.append(TrafficJamCurve(duration, rng, cruise=0.9))
        else:
            curves.append(HighwayCurve(duration, rng, cruise=rng.uniform(0.8, 1.0)))
    return _scenario(
        "trucking", network, curves, rng,
        class_name="truck",
        policy_name=policy, update_cost=update_cost,
        attributes=(AttributeDef("carrier", "string"),),
        attribute_maker=lambda i, r: {"carrier": f"carrier-{i % 3}"},
        use_index=use_index, dt=dt, database_factory=database_factory,
    )


def battlefield_scenario(num_units: int = 25, duration: float = 30.0,
                         seed: int = 23, policy: str = "cil",
                         update_cost: float = 2.0,
                         use_index: bool = True,
                         dt: float = DEFAULT_TICK_MINUTES,
                         database_factory: DatabaseFactory | None = None,
                         ) -> FleetScenario:
    """Ground units on an irregular network, mixed speed regimes.

    Units carry an ``allegiance`` attribute ("retrieve the *friendly*
    helicopters currently in a given region").
    """
    if num_units < 1:
        raise SimulationError("need at least one unit")
    rng = random.Random(seed)
    # Extent scales with duration so the fastest units' trips fit.
    extent = max(25.0, 1.4 * duration)
    network = random_network(
        num_intersections=60, extent_miles=extent, rng=rng, neighbours=3
    )
    curves: list[SpeedCurve] = []
    for i in range(num_units):
        regime = i % 3
        if regime == 0:
            curves.append(HighwayCurve(duration, rng, cruise=rng.uniform(0.5, 1.2)))
        elif regime == 1:
            curves.append(CityCurve(duration, rng, cruise=rng.uniform(0.2, 0.5)))
        else:
            curves.append(RushHourCurve(duration, rng, free_flow=0.7))
    return _scenario(
        "battlefield", network, curves, rng,
        class_name="unit",
        policy_name=policy, update_cost=update_cost,
        attributes=(AttributeDef("allegiance", "string"),),
        attribute_maker=lambda i, r: {
            "allegiance": "friendly" if i % 2 == 0 else "hostile"
        },
        use_index=use_index, dt=dt, database_factory=database_factory,
    )

__all__ = [
    "DatabaseFactory",
    "FleetScenario",
    "battlefield_scenario",
    "taxi_fleet_scenario",
    "trucking_scenario",
]
