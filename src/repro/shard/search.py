"""Greedy search for the cheapest partitioning of a recorded workload.

The searcher enumerates a small, deterministic candidate family —
every uniform grid factorization of the shard count plus two recursive
binary splits (load-weighted over the recorded update points, and the
load-agnostic midpoint variant) — scores each with
:class:`~repro.shard.cost.ShardCostModel`, and returns them ranked.
Ties break toward the earlier candidate label, so the result is stable
across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShardError
from repro.shard.cost import CostBreakdown, ShardCostModel, TraceWorkload
from repro.shard.partition import (
    BinarySplitPartitioning,
    Partitioning,
    UniformGridPartitioning,
    grid_shapes,
)


@dataclass(frozen=True, slots=True)
class ScoredPartitioning:
    """One candidate with its label and cost breakdown."""

    label: str
    partitioning: Partitioning
    cost: CostBreakdown


class PartitionSearcher:
    """Pick the cheapest partitioning for a workload at a shard count."""

    def __init__(self, num_shards: int,
                 cost_model: ShardCostModel | None = None) -> None:
        if num_shards < 1:
            raise ShardError(
                f"num_shards must be positive, got {num_shards}"
            )
        self.num_shards = num_shards
        self.cost_model = cost_model if cost_model is not None \
            else ShardCostModel()

    def candidates(self, workload: TraceWorkload) -> list[
            tuple[str, Partitioning]]:
        """The deterministic candidate family for ``workload``."""
        bounds = workload.bounds
        found: list[tuple[str, Partitioning]] = []
        for nx, ny in grid_shapes(self.num_shards):
            found.append((
                f"uniform-{nx}x{ny}",
                UniformGridPartitioning(bounds, nx, ny),
            ))
        points = [(op.x, op.y) for op in workload.updates]
        if points:
            found.append((
                "binary-split",
                BinarySplitPartitioning.build(bounds, points,
                                              self.num_shards),
            ))
        found.append((
            "binary-split-midpoint",
            BinarySplitPartitioning.build_midpoint(bounds,
                                                   self.num_shards),
        ))
        return found

    def rank(self, workload: TraceWorkload) -> list[ScoredPartitioning]:
        """All candidates scored, cheapest first (stable on ties)."""
        scored = [
            ScoredPartitioning(
                label=label,
                partitioning=partitioning,
                cost=self.cost_model.score(partitioning, workload),
            )
            for label, partitioning in self.candidates(workload)
        ]
        # Stable sort: candidate order is the deterministic tiebreak.
        scored.sort(key=lambda entry: entry.cost.total)
        return scored

    def best(self, workload: TraceWorkload) -> ScoredPartitioning:
        """The cheapest candidate under the cost model."""
        ranked = self.rank(workload)
        if not ranked:
            raise ShardError("no partitioning candidates generated")
        return ranked[0]


__all__ = [
    "PartitionSearcher",
    "ScoredPartitioning",
]
