"""Parallel per-shard query fan-out over the batch engine.

:class:`ShardedBatchQueryEngine` is the sharded counterpart of
:class:`~repro.dbms.batch.BatchQueryEngine`: it routes each query of a
batch to the shards that can contribute candidates (the owner shard
for position queries, the coverage-intersecting shards for range and
within-distance queries), answers every shard's sub-batch with a
per-shard :class:`BatchQueryEngine`, and merges the per-shard answers
back into original query order — byte-identical to running the whole
batch on a single-shard engine.

``jobs > 1`` fans the shard sub-batches over a fork
``ProcessPoolExecutor`` using the same inherit-via-fork state passing
the sweep executor uses: the shard databases are installed as worker
globals by the pool initializer, so nothing heavyweight is pickled per
task.  Every per-shard engine (worker or in-process) is built fresh
per ``run`` call, so cache hit/miss counts — and therefore the
recorded ``cache`` trace event — are identical for every ``jobs``
value.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.dbms.batch import (
    BatchAnswer,
    BatchQuery,
    BatchQueryEngine,
    PositionQuery,
    RangeQuery,
)
from repro.dbms.database import MovingObjectDatabase
from repro.dbms.query import RangeAnswer
from repro.errors import QueryError
from repro.geometry.bbox import Rect2D
from repro.index.rtree import SearchStats
from repro.shard.sharded import ShardedDatabase, quiet_recording
from repro.trace.events import CACHE, answer_digest
from repro.trace.recorder import get_recorder, set_recorder


def _pool_context():
    """Fork where available (cheap on Linux), default context elsewhere."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


_WORKER_SHARDS: list[MovingObjectDatabase] | None = None
_WORKER_VECTORIZE: bool | None = None


def _init_worker(shards: list[MovingObjectDatabase],
                 vectorize: bool | None) -> None:
    """Install the forked shard databases as this worker's globals."""
    global _WORKER_SHARDS, _WORKER_VECTORIZE
    _WORKER_SHARDS = shards
    _WORKER_VECTORIZE = vectorize
    # The parent's recorder arrives through fork; workers must not
    # append to it — the facade emits the canonical event stream.
    set_recorder(None)


def _run_shard_batch(shard: int, queries: list[BatchQuery]) -> tuple[
        int, list[BatchAnswer], int, int, tuple[int, int, int]]:
    """Answer one shard's sub-batch in a worker process."""
    assert _WORKER_SHARDS is not None
    engine = BatchQueryEngine(_WORKER_SHARDS[shard],
                              vectorize=_WORKER_VECTORIZE)
    stats = SearchStats()
    answers = engine.run(queries, stats)
    return (shard, answers, engine.cache_hits, engine.cache_misses,
            (stats.nodes_visited, stats.entries_tested, stats.results))


def _merge_range(previous: RangeAnswer | None,
                 piece: RangeAnswer) -> RangeAnswer:
    """Fold one shard's (or the stationary store's) partial answer in.

    Candidate sets partition by owner shard, so unions and sums
    reproduce the single-shard fields exactly.
    """
    if previous is None:
        return piece
    return RangeAnswer(
        time=piece.time,
        may=previous.may | piece.may,
        must=previous.must | piece.must,
        examined=previous.examined + piece.examined,
        candidates=previous.candidates | piece.candidates,
    )


class ShardedBatchQueryEngine:
    """Batched queries over a :class:`ShardedDatabase`.

    Mirrors the :class:`BatchQueryEngine` surface (``run``,
    ``cache_hits``/``cache_misses``, ``hit_rate``); ``jobs`` selects
    serial or process-parallel shard execution.  Answers are identical
    for every ``(shards, jobs)`` combination.
    """

    def __init__(self, database: ShardedDatabase, jobs: int = 1,
                 vectorize: bool | None = None) -> None:
        if jobs < 1:
            raise QueryError(f"jobs must be >= 1, got {jobs}")
        self._db = database
        self.jobs = jobs
        self.vectorize = vectorize
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def database(self) -> ShardedDatabase:
        return self._db

    def hit_rate(self) -> float:
        """Lifetime hit rate across all per-shard engines run so far."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def run(self, queries: list[BatchQuery],
            stats: SearchStats | None = None) -> list[BatchAnswer]:
        """Answer ``queries`` in order via per-shard sub-batches."""
        self._validate(queries)
        num_shards = self._db.num_shards
        shard_queries: list[list[BatchQuery]] = [
            [] for _ in range(num_shards)
        ]
        shard_slots: list[list[int]] = [[] for _ in range(num_shards)]
        stationary_queries: list[BatchQuery] = []
        stationary_slots: list[int] = []
        for i, query in enumerate(queries):
            if isinstance(query, PositionQuery):
                owner = self._db.owner_of(query.object_id)
                shard_queries[owner].append(query)
                shard_slots[owner].append(i)
                continue
            if isinstance(query, RangeQuery):
                window = query.polygon.bounding_rect
                kind = "range"
            else:
                center, radius = query.center, query.radius
                window = Rect2D(
                    center.x - radius, center.y - radius,
                    center.x + radius, center.y + radius,
                )
                kind = "within"
            fanned = self._db.shards_for_window(window)
            for shard in fanned:
                shard_queries[shard].append(query)
                shard_slots[shard].append(i)
            self._db._publish_fanout(kind, len(fanned))
            stationary_queries.append(query)
            stationary_slots.append(i)

        active = [
            shard for shard in range(num_shards) if shard_queries[shard]
        ]
        shard_answers: list[list[BatchAnswer]] = [
            [] for _ in range(num_shards)
        ]
        run_hits = 0
        run_misses = 0
        if self.jobs > 1 and len(active) > 1:
            run_hits, run_misses = self._run_parallel(
                active, shard_queries, shard_answers, stats
            )
        else:
            with quiet_recording():
                for shard in active:
                    engine = BatchQueryEngine(
                        self._db.shard_databases[shard],
                        vectorize=self.vectorize,
                    )
                    shard_answers[shard] = engine.run(
                        shard_queries[shard], stats
                    )
                    run_hits += engine.cache_hits
                    run_misses += engine.cache_misses

        stationary_answers: list[BatchAnswer] = []
        if stationary_queries:
            with quiet_recording():
                stationary_engine = BatchQueryEngine(
                    self._db.stationary_database, vectorize=self.vectorize
                )
                stationary_answers = stationary_engine.run(
                    stationary_queries
                )
                run_hits += stationary_engine.cache_hits
                run_misses += stationary_engine.cache_misses

        merged: list[BatchAnswer | None] = [None] * len(queries)
        for shard in active:
            for slot, piece in zip(shard_slots[shard],
                                   shard_answers[shard]):
                if isinstance(queries[slot], PositionQuery):
                    merged[slot] = piece
                else:
                    merged[slot] = _merge_range(merged[slot], piece)
        for slot, piece in zip(stationary_slots, stationary_answers):
            merged[slot] = _merge_range(merged[slot], piece)

        self.cache_hits += run_hits
        self.cache_misses += run_misses
        answers: list[BatchAnswer] = [
            answer for answer in merged if answer is not None
        ]
        if len(answers) != len(queries):  # pragma: no cover - routing bug
            raise QueryError("sharded batch produced incomplete answers")
        self._record(queries, answers, run_hits, run_misses)
        return answers

    def _validate(self, queries: list[BatchQuery]) -> None:
        """The single-engine validation sequence against facade state."""
        db = self._db
        for query in queries:
            db._check_query_time(query.time)
            if isinstance(query, PositionQuery):
                db.record(query.object_id)
                continue
            db._check_index_coverage(query.time)
            if not isinstance(query, RangeQuery) and query.radius < 0:
                raise QueryError(
                    f"radius must be nonnegative, got {query.radius}"
                )

    def _run_parallel(self, active: list[int],
                      shard_queries: list[list[BatchQuery]],
                      shard_answers: list[list[BatchAnswer]],
                      stats: SearchStats | None) -> tuple[int, int]:
        """Fan active shards over a fork pool; one task per shard."""
        run_hits = 0
        run_misses = 0
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(active)),
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(list(self._db.shard_databases), self.vectorize),
        ) as pool:
            futures = [
                pool.submit(_run_shard_batch, shard, shard_queries[shard])
                for shard in active
            ]
            for future in futures:
                shard, answers, hits, misses, counted = future.result()
                shard_answers[shard] = answers
                run_hits += hits
                run_misses += misses
                if stats is not None:
                    stats.nodes_visited += counted[0]
                    stats.entries_tested += counted[1]
                    stats.results += counted[2]
        return run_hits, run_misses

    def _record(self, queries: list[BatchQuery],
                answers: list[BatchAnswer], run_hits: int,
                run_misses: int) -> None:
        """Emit the batch's trace events, single-engine shaped."""
        rec = get_recorder()
        if not rec.enabled or not queries:
            return
        batch = rec.next_batch_id()
        for i, (query, answer) in enumerate(zip(queries, answers)):
            if isinstance(query, PositionQuery):
                rec.record_query(
                    "position", answer_digest(answer),
                    time=query.time, object_id=query.object_id,
                    engine="batch", batch=batch, index=i,
                )
            elif isinstance(query, RangeQuery):
                rec.record_query(
                    "range", answer_digest(answer), time=query.time,
                    engine="batch", batch=batch, index=i,
                    polygon=[[v.x, v.y] for v in query.polygon.vertices],
                    where=query.where, class_name=query.class_name,
                )
            else:
                rec.record_query(
                    "within", answer_digest(answer), time=query.time,
                    engine="batch", batch=batch, index=i,
                    center=[query.center.x, query.center.y],
                    radius=query.radius, where=query.where,
                    class_name=query.class_name,
                )
        rec.record(CACHE, hits=run_hits, misses=run_misses)


__all__ = [
    "ShardedBatchQueryEngine",
]
