"""Spatial partitionings: mapping positions and extents to shard ids.

A :class:`Partitioning` divides the plane's bounding region into
``num_shards`` disjoint cells and assigns every point to exactly one
shard id.  Two families are provided:

* :class:`UniformGridPartitioning` — an ``nx x ny`` grid of equal
  cells over the bounding rectangle (the classic static choice);
* :class:`BinarySplitPartitioning` — a recursive binary split of the
  bounding rectangle.  :meth:`BinarySplitPartitioning.build` splits
  load-weighted: each node cuts its wider axis at the coordinate
  quantile that sends ``k // 2`` of the remaining shard budget to the
  low side, so dense regions receive proportionally more shards.

Points outside the bounding region clamp to the nearest cell, so every
position always has exactly one owner — a partitioning chosen from a
recorded trace stays total when live objects drift past the recorded
extent ("Evolving Distributions Under Local Motion": objects migrate
between cells over time).

Partitionings round-trip through JSON specs (:meth:`Partitioning.
to_spec` / :func:`partitioning_from_spec`) and shard-plan files
(:func:`save_plan` / :func:`load_plan`, schema ``repro-shard-plan/1``)
so a searched plan can be handed to ``repro stats --shard-plan``.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ShardError
from repro.geometry.bbox import Rect2D

#: Shard-plan file schema identifier.
PLAN_SCHEMA = "repro-shard-plan/1"


def _bounds_to_spec(bounds: Rect2D) -> list[float]:
    return [bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y]


def _bounds_from_spec(raw: Any) -> Rect2D:
    if not isinstance(raw, (list, tuple)) or len(raw) != 4:
        raise ShardError(f"bounds spec must be [min_x, min_y, max_x, max_y], got {raw!r}")
    return Rect2D(float(raw[0]), float(raw[1]), float(raw[2]), float(raw[3]))


class Partitioning(ABC):
    """A total assignment of plane positions to shard ids ``0..n-1``."""

    #: Spec discriminator; subclasses override.
    kind: str = "abstract"

    def __init__(self, bounds: Rect2D, num_shards: int) -> None:
        if num_shards < 1:
            raise ShardError(f"num_shards must be positive, got {num_shards}")
        self.bounds = bounds
        self.num_shards = num_shards

    @abstractmethod
    def shard_of_point(self, x: float, y: float) -> int:
        """The owning shard of ``(x, y)`` (clamped into the bounds)."""

    @abstractmethod
    def shards_for_rect(self, rect: Rect2D) -> tuple[int, ...]:
        """Every shard whose cell intersects ``rect``, ascending.

        Conservative for rects beyond the bounds: they clamp onto the
        boundary cells, mirroring :meth:`shard_of_point` ownership.
        """

    @abstractmethod
    def region_of(self, shard: int) -> Rect2D:
        """The cell rectangle of one shard."""

    @abstractmethod
    def to_spec(self) -> dict[str, Any]:
        """A JSON-safe spec that :func:`partitioning_from_spec` accepts."""

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ShardError(
                f"shard id {shard} out of range [0, {self.num_shards})"
            )


class UniformGridPartitioning(Partitioning):
    """An ``nx x ny`` grid of equal cells; ids are row-major."""

    kind = "uniform"

    def __init__(self, bounds: Rect2D, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ShardError(f"grid shape must be positive, got {nx}x{ny}")
        super().__init__(bounds, nx * ny)
        self.nx = nx
        self.ny = ny

    def _column_of(self, x: float) -> int:
        width = self.bounds.width
        if width <= 0.0:
            return 0
        col = int((x - self.bounds.min_x) / width * self.nx)
        return min(max(col, 0), self.nx - 1)

    def _row_of(self, y: float) -> int:
        height = self.bounds.height
        if height <= 0.0:
            return 0
        row = int((y - self.bounds.min_y) / height * self.ny)
        return min(max(row, 0), self.ny - 1)

    def shard_of_point(self, x: float, y: float) -> int:
        return self._row_of(y) * self.nx + self._column_of(x)

    def shards_for_rect(self, rect: Rect2D) -> tuple[int, ...]:
        col_lo = self._column_of(rect.min_x)
        col_hi = self._column_of(rect.max_x)
        row_lo = self._row_of(rect.min_y)
        row_hi = self._row_of(rect.max_y)
        return tuple(
            row * self.nx + col
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        )

    def region_of(self, shard: int) -> Rect2D:
        self._check_shard(shard)
        row, col = divmod(shard, self.nx)
        cell_w = self.bounds.width / self.nx
        cell_h = self.bounds.height / self.ny
        return Rect2D(
            self.bounds.min_x + col * cell_w,
            self.bounds.min_y + row * cell_h,
            self.bounds.min_x + (col + 1) * cell_w,
            self.bounds.min_y + (row + 1) * cell_h,
        )

    def to_spec(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "bounds": _bounds_to_spec(self.bounds),
            "nx": self.nx,
            "ny": self.ny,
        }

    def __repr__(self) -> str:
        return f"UniformGridPartitioning({self.nx}x{self.ny})"


@dataclass(frozen=True, slots=True)
class _SplitNode:
    """One internal node of a binary split: cut ``axis`` at ``cut``.

    ``low``/``high`` are either child nodes or leaf shard ids (ints).
    Points with coordinate strictly below the cut go low; the cut line
    itself belongs to the high side, keeping ownership deterministic.
    """

    axis: int
    cut: float
    low: "_SplitNode | int"
    high: "_SplitNode | int"


class BinarySplitPartitioning(Partitioning):
    """A recursive binary split of the bounding rectangle.

    Leaf ids are assigned in low-before-high depth-first order, so a
    spec round-trip reproduces the identical id assignment.
    """

    kind = "binary_split"

    def __init__(self, bounds: Rect2D, root: "_SplitNode | int") -> None:
        regions: dict[int, Rect2D] = {}
        _collect_regions(root, bounds, regions)
        leaf_ids = sorted(regions)
        if leaf_ids != list(range(len(leaf_ids))):
            raise ShardError(
                f"binary split leaves must be ids 0..n-1, got {leaf_ids}"
            )
        super().__init__(bounds, len(leaf_ids))
        self.root = root
        self._regions = regions

    @classmethod
    def build(cls, bounds: Rect2D, points: Sequence[tuple[float, float]],
              num_shards: int) -> "BinarySplitPartitioning":
        """Greedy load-weighted split of ``bounds`` into ``num_shards``.

        ``points`` is the load sample (e.g. recorded update positions).
        Each node sends ``k // 2`` of its shard budget to the low side
        and cuts its wider axis at the matching load quantile, falling
        back to the spatial midpoint when the sample is empty or
        degenerate there.
        """
        if num_shards < 1:
            raise ShardError(f"num_shards must be positive, got {num_shards}")
        counter = _LeafCounter()
        root = _build_split(bounds, [(float(x), float(y)) for x, y in points],
                            num_shards, counter, midpoint=False)
        return cls(bounds, root)

    @classmethod
    def build_midpoint(cls, bounds: Rect2D,
                       num_shards: int) -> "BinarySplitPartitioning":
        """A load-agnostic variant: every cut is the spatial midpoint."""
        if num_shards < 1:
            raise ShardError(f"num_shards must be positive, got {num_shards}")
        counter = _LeafCounter()
        root = _build_split(bounds, [], num_shards, counter, midpoint=True)
        return cls(bounds, root)

    def shard_of_point(self, x: float, y: float) -> int:
        node: _SplitNode | int = self.root
        while isinstance(node, _SplitNode):
            coordinate = x if node.axis == 0 else y
            node = node.low if coordinate < node.cut else node.high
        return node

    def shards_for_rect(self, rect: Rect2D) -> tuple[int, ...]:
        found: list[int] = []
        stack: list[_SplitNode | int] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, int):
                found.append(node)
                continue
            lo = rect.min_x if node.axis == 0 else rect.min_y
            hi = rect.max_x if node.axis == 0 else rect.max_y
            # The cut line belongs to the high side; a rect touching it
            # from below still only reaches low cells, but coverage at
            # the line itself must fan both ways to stay conservative.
            if lo <= node.cut:
                stack.append(node.low)
            if hi >= node.cut:
                stack.append(node.high)
        return tuple(sorted(found))

    def region_of(self, shard: int) -> Rect2D:
        self._check_shard(shard)
        return self._regions[shard]

    def to_spec(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "bounds": _bounds_to_spec(self.bounds),
            "root": _node_to_spec(self.root),
        }

    def __repr__(self) -> str:
        return f"BinarySplitPartitioning(num_shards={self.num_shards})"


class _LeafCounter:
    """Depth-first leaf id assignment for :func:`_build_split`."""

    def __init__(self) -> None:
        self.next_id = 0

    def take(self) -> int:
        leaf = self.next_id
        self.next_id += 1
        return leaf


def _build_split(rect: Rect2D, points: list[tuple[float, float]], k: int,
                 counter: _LeafCounter, midpoint: bool) -> "_SplitNode | int":
    if k == 1:
        return counter.take()
    axis = 0 if rect.width >= rect.height else 1
    lo_edge = rect.min_x if axis == 0 else rect.min_y
    hi_edge = rect.max_x if axis == 0 else rect.max_y
    k_low = k // 2
    cut = (lo_edge + hi_edge) / 2.0
    if not midpoint and points:
        coords = sorted(p[axis] for p in points)
        quantile = coords[min(len(coords) - 1,
                              (len(coords) * k_low) // k)]
        if lo_edge < quantile < hi_edge:
            cut = quantile
    low_points = [p for p in points if p[axis] < cut]
    high_points = [p for p in points if p[axis] >= cut]
    if axis == 0:
        low_rect = Rect2D(rect.min_x, rect.min_y, cut, rect.max_y)
        high_rect = Rect2D(cut, rect.min_y, rect.max_x, rect.max_y)
    else:
        low_rect = Rect2D(rect.min_x, rect.min_y, rect.max_x, cut)
        high_rect = Rect2D(rect.min_x, cut, rect.max_x, rect.max_y)
    low = _build_split(low_rect, low_points, k_low, counter, midpoint)
    high = _build_split(high_rect, high_points, k - k_low, counter, midpoint)
    return _SplitNode(axis=axis, cut=cut, low=low, high=high)


def _collect_regions(node: "_SplitNode | int", rect: Rect2D,
                     regions: dict[int, Rect2D]) -> None:
    if isinstance(node, int):
        if node in regions:
            raise ShardError(f"binary split leaf id {node} appears twice")
        regions[node] = rect
        return
    if node.axis not in (0, 1):
        raise ShardError(f"split axis must be 0 or 1, got {node.axis!r}")
    if node.axis == 0:
        if not rect.min_x <= node.cut <= rect.max_x:
            raise ShardError(
                f"split cut {node.cut} outside cell x-range "
                f"[{rect.min_x}, {rect.max_x}]"
            )
        low_rect = Rect2D(rect.min_x, rect.min_y, node.cut, rect.max_y)
        high_rect = Rect2D(node.cut, rect.min_y, rect.max_x, rect.max_y)
    else:
        if not rect.min_y <= node.cut <= rect.max_y:
            raise ShardError(
                f"split cut {node.cut} outside cell y-range "
                f"[{rect.min_y}, {rect.max_y}]"
            )
        low_rect = Rect2D(rect.min_x, rect.min_y, rect.max_x, node.cut)
        high_rect = Rect2D(rect.min_x, node.cut, rect.max_x, rect.max_y)
    _collect_regions(node.low, low_rect, regions)
    _collect_regions(node.high, high_rect, regions)


def _node_to_spec(node: "_SplitNode | int") -> Any:
    if isinstance(node, int):
        return node
    return {
        "axis": node.axis,
        "cut": node.cut,
        "low": _node_to_spec(node.low),
        "high": _node_to_spec(node.high),
    }


def _node_from_spec(raw: Any) -> "_SplitNode | int":
    if isinstance(raw, bool):
        raise ShardError(f"malformed split node {raw!r}")
    if isinstance(raw, int):
        return raw
    if not isinstance(raw, dict):
        raise ShardError(f"malformed split node {raw!r}")
    try:
        return _SplitNode(
            axis=int(raw["axis"]),
            cut=float(raw["cut"]),
            low=_node_from_spec(raw["low"]),
            high=_node_from_spec(raw["high"]),
        )
    except KeyError as exc:
        raise ShardError(f"split node missing key {exc}") from None


def partitioning_from_spec(spec: dict[str, Any]) -> Partitioning:
    """Rebuild a partitioning from its :meth:`~Partitioning.to_spec`."""
    if not isinstance(spec, dict):
        raise ShardError(f"partitioning spec must be a dict, got {spec!r}")
    kind = spec.get("kind")
    bounds = _bounds_from_spec(spec.get("bounds"))
    if kind == UniformGridPartitioning.kind:
        return UniformGridPartitioning(
            bounds, int(spec["nx"]), int(spec["ny"])
        )
    if kind == BinarySplitPartitioning.kind:
        return BinarySplitPartitioning(bounds, _node_from_spec(spec["root"]))
    raise ShardError(f"unknown partitioning kind {kind!r}")


def uniform_grid_for(bounds: Rect2D, num_shards: int) -> UniformGridPartitioning:
    """The squarest ``nx x ny`` uniform grid with ``nx * ny == num_shards``."""
    if num_shards < 1:
        raise ShardError(f"num_shards must be positive, got {num_shards}")
    best_nx = 1
    for nx in range(1, num_shards + 1):
        if num_shards % nx == 0:
            ny = num_shards // nx
            if abs(nx - ny) <= abs(best_nx - num_shards // best_nx):
                best_nx = nx
    return UniformGridPartitioning(bounds, best_nx, num_shards // best_nx)


def grid_shapes(num_shards: int) -> list[tuple[int, int]]:
    """Every ``(nx, ny)`` factorisation of ``num_shards``, ascending nx."""
    if num_shards < 1:
        raise ShardError(f"num_shards must be positive, got {num_shards}")
    return [(nx, num_shards // nx) for nx in range(1, num_shards + 1)
            if num_shards % nx == 0]


def save_plan(partitioning: Partitioning, path: str,
              meta: dict[str, Any] | None = None) -> None:
    """Write a shard-plan file (:data:`PLAN_SCHEMA`) for ``--shard-plan``."""
    document = {
        "schema": PLAN_SCHEMA,
        "partitioning": partitioning.to_spec(),
        "meta": dict(meta or {}),
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=2)
            handle.write("\n")
    except OSError as exc:
        raise ShardError(f"cannot write shard plan {path!r}: {exc}") from exc


def load_plan(path: str) -> Partitioning:
    """Load a shard-plan file written by :func:`save_plan`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ShardError(f"cannot read shard plan {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ShardError(f"malformed shard plan {path!r}: {exc}") from exc
    if not isinstance(document, dict) or document.get("schema") != PLAN_SCHEMA:
        raise ShardError(
            f"unsupported shard-plan schema in {path!r}; "
            f"this build reads {PLAN_SCHEMA}"
        )
    return partitioning_from_spec(document["partitioning"])


__all__ = [
    "BinarySplitPartitioning",
    "PLAN_SCHEMA",
    "Partitioning",
    "UniformGridPartitioning",
    "grid_shapes",
    "load_plan",
    "partitioning_from_spec",
    "save_plan",
    "uniform_grid_for",
]
