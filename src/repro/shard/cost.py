"""Cost model scoring a partitioning against a recorded workload.

Follows the mongodb-d4 ``CostModel`` shape: a weighted sum

    ``alpha * update_fanout + beta * query_fanin + gamma * temporal_skew``

evaluated over a workload extracted from a flight-recorder trace
(:mod:`repro.trace`):

* **update fan-out** — every insert/update routes to one shard; an
  update whose position falls in a different cell than the object's
  previous one adds a migration penalty (cross-shard hand-off).
* **query fan-in** — the number of shards each query's window
  intersects, summed over the workload (queries without a window —
  k-nearest — touch every shard).
* **temporal skew** — the workload's time span is cut into
  ``skew_segments`` segments (the d4 snippet's ``skew_segments``); the
  per-segment load vector across shards is reduced to its population
  variance and averaged over segments, so a partitioning that funnels
  any time slice's traffic into few shards scores worse even when the
  total load is balanced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ShardError
from repro.geometry.bbox import Rect2D
from repro.shard.partition import Partitioning
from repro.trace import events as ev
from repro.trace.events import TraceEvent


@dataclass(frozen=True, slots=True)
class UpdateOp:
    """One position write (insert or update) at ``(x, y)``."""

    time: float
    x: float
    y: float
    object_id: str


@dataclass(frozen=True, slots=True)
class QueryOp:
    """One query; ``window`` is ``None`` when every shard is touched."""

    time: float
    window: Rect2D | None


@dataclass(frozen=True, slots=True)
class TraceWorkload:
    """The shard-relevant skeleton of a recorded trace."""

    updates: tuple[UpdateOp, ...]
    queries: tuple[QueryOp, ...]
    #: Bounding rectangle of every recorded route vertex and position —
    #: the region candidate partitionings should cover.
    bounds: Rect2D

    @property
    def empty(self) -> bool:
        return not self.updates and not self.queries


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """One scored partitioning: the three components and their sum."""

    update_fanout: float
    query_fanin: float
    temporal_skew: float
    total: float


class _BoundsTracker:
    """Running min/max over every coordinate seen in the trace."""

    def __init__(self) -> None:
        self.min_x = math.inf
        self.min_y = math.inf
        self.max_x = -math.inf
        self.max_y = -math.inf

    def add(self, x: float, y: float) -> None:
        self.min_x = min(self.min_x, x)
        self.min_y = min(self.min_y, y)
        self.max_x = max(self.max_x, x)
        self.max_y = max(self.max_y, y)

    def rect(self) -> Rect2D:
        if self.min_x > self.max_x:
            return Rect2D(0.0, 0.0, 1.0, 1.0)
        if self.min_x == self.max_x or self.min_y == self.max_y:
            return Rect2D(self.min_x, self.min_y,
                          self.max_x, self.max_y).expanded(0.5)
        return Rect2D(self.min_x, self.min_y, self.max_x, self.max_y)


def _polygon_window(vertices: Sequence[Sequence[float]]) -> Rect2D | None:
    xs = [float(v[0]) for v in vertices]
    ys = [float(v[1]) for v in vertices]
    if not xs:
        return None
    return Rect2D(min(xs), min(ys), max(xs), max(ys))


def workload_from_events(trace_events: Sequence[TraceEvent]) -> TraceWorkload:
    """Extract the shard-relevant workload from recorded events.

    Update positions come straight off insert/update events.  Query
    windows use each query's recorded parameters: range queries their
    polygon bbox, within-distance queries ``center +- radius``,
    position and proximity queries the issuing object's last recorded
    position (grown by the radius for proximity), nearest queries no
    window (they touch every shard).
    """
    updates: list[UpdateOp] = []
    queries: list[QueryOp] = []
    bounds = _BoundsTracker()
    last_position: dict[str, tuple[float, float]] = {}
    for event in trace_events:
        data = event.data
        if event.kind == ev.ROUTE_REGISTER:
            for vertex in data.get("vertices", []):
                bounds.add(float(vertex[0]), float(vertex[1]))
        elif event.kind in (ev.INSERT_MOBILE, ev.UPDATE):
            if event.kind == ev.INSERT_MOBILE:
                position = data.get("position", [0.0, 0.0])
                x, y = float(position[0]), float(position[1])
            else:
                x, y = float(data["x"]), float(data["y"])
            time = float(event.time or 0.0)
            object_id = str(event.object_id)
            updates.append(UpdateOp(time=time, x=x, y=y,
                                    object_id=object_id))
            last_position[object_id] = (x, y)
            bounds.add(x, y)
        elif event.kind == ev.INSERT_STATIONARY:
            position = data.get("position", [0.0, 0.0])
            bounds.add(float(position[0]), float(position[1]))
        elif event.kind == ev.QUERY:
            time = float(event.time or 0.0)
            kind = data.get("kind")
            window: Rect2D | None = None
            if kind == "range":
                window = _polygon_window(data.get("polygon", []))
            elif kind == "within":
                center = data.get("center", [0.0, 0.0])
                radius = float(data.get("radius", 0.0))
                window = Rect2D(
                    float(center[0]) - radius, float(center[1]) - radius,
                    float(center[0]) + radius, float(center[1]) + radius,
                )
            elif kind in ("position", "proximity"):
                known = last_position.get(str(event.object_id))
                if known is not None:
                    radius = float(data.get("radius", 0.0))
                    window = Rect2D(known[0] - radius, known[1] - radius,
                                    known[0] + radius, known[1] + radius)
            queries.append(QueryOp(time=time, window=window))
    return TraceWorkload(updates=tuple(updates), queries=tuple(queries),
                         bounds=bounds.rect())


def workload_from_trace(path: str) -> TraceWorkload:
    """Load a flight-recorder trace file and extract its workload."""
    from repro.trace.recorder import read_trace

    _, trace_events = read_trace(path)
    return workload_from_events(trace_events)


class ShardCostModel:
    """The d4-style weighted objective over a :class:`TraceWorkload`."""

    def __init__(self, alpha: float = 1.0, beta: float = 1.0,
                 gamma: float = 1.0, skew_segments: int = 10) -> None:
        if alpha < 0 or beta < 0 or gamma < 0:
            raise ShardError(
                f"cost weights must be nonnegative, got "
                f"alpha={alpha}, beta={beta}, gamma={gamma}"
            )
        if skew_segments < 1:
            raise ShardError(
                f"skew_segments must be positive, got {skew_segments}"
            )
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.skew_segments = skew_segments

    def score(self, partitioning: Partitioning,
              workload: TraceWorkload) -> CostBreakdown:
        """Evaluate ``partitioning`` on ``workload``; lower is better."""
        num_shards = partitioning.num_shards
        segments = self._segment_edges(workload)
        load = [[0.0] * num_shards for _ in segments]

        update_fanout = 0.0
        owner: dict[str, int] = {}
        for op in workload.updates:
            shard = partitioning.shard_of_point(op.x, op.y)
            update_fanout += 1.0
            previous = owner.get(op.object_id)
            if previous is not None and previous != shard:
                # Cross-cell hand-off: the old owner must be informed
                # too, so a migration costs one extra message.
                update_fanout += 1.0
            owner[op.object_id] = shard
            load[self._segment_of(op.time, segments)][shard] += 1.0

        query_fanin = 0.0
        for op in workload.queries:
            if op.window is None:
                fanned: tuple[int, ...] = tuple(range(num_shards))
            else:
                fanned = partitioning.shards_for_rect(op.window)
            query_fanin += float(len(fanned))
            segment = self._segment_of(op.time, segments)
            for shard in fanned:
                load[segment][shard] += 1.0

        temporal_skew = _mean(
            [_population_variance(row) for row in load]
        )
        total = (self.alpha * update_fanout + self.beta * query_fanin
                 + self.gamma * temporal_skew)
        return CostBreakdown(
            update_fanout=update_fanout,
            query_fanin=query_fanin,
            temporal_skew=temporal_skew,
            total=total,
        )

    def _segment_edges(self, workload: TraceWorkload) -> list[float]:
        times = [op.time for op in workload.updates]
        times.extend(op.time for op in workload.queries)
        if not times:
            return [0.0]
        lo, hi = min(times), max(times)
        if hi <= lo:
            return [lo]
        step = (hi - lo) / self.skew_segments
        return [lo + i * step for i in range(self.skew_segments)]

    @staticmethod
    def _segment_of(time: float, edges: list[float]) -> int:
        # Edges are ascending segment start times; binary search is
        # overkill for <= a few dozen segments.
        for i in range(len(edges) - 1, -1, -1):
            if time >= edges[i]:
                return i
        return 0


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _population_variance(values: list[float]) -> float:
    if not values:
        return 0.0
    mean = _mean(values)
    return sum((value - mean) ** 2 for value in values) / len(values)


def measured_fanouts(partitioning: Partitioning,
                     workload: TraceWorkload) -> list[int]:
    """Per-query shard fan-out counts under the cell model, in order."""
    fanouts: list[int] = []
    for op in workload.queries:
        if op.window is None:
            fanouts.append(partitioning.num_shards)
        else:
            fanouts.append(len(partitioning.shards_for_rect(op.window)))
    return fanouts


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by the nearest-rank method."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ShardError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return float(ordered[rank])


__all__ = [
    "CostBreakdown",
    "QueryOp",
    "ShardCostModel",
    "TraceWorkload",
    "UpdateOp",
    "measured_fanouts",
    "percentile",
    "workload_from_events",
    "workload_from_trace",
]
