"""Cost-model-driven spatial sharding for the moving-objects DBMS.

The scale-out layer: partition the plane into shards
(:mod:`repro.shard.partition`), score candidate partitionings against
a recorded workload (:mod:`repro.shard.cost`), search for the cheapest
one (:mod:`repro.shard.search`), and serve the single-database API
over N shards with sound fan-out pruning and byte-identical merges
(:mod:`repro.shard.sharded`, :mod:`repro.shard.parallel`).
"""

from repro.shard.cost import (
    CostBreakdown,
    QueryOp,
    ShardCostModel,
    TraceWorkload,
    UpdateOp,
    measured_fanouts,
    percentile,
    workload_from_events,
    workload_from_trace,
)
from repro.shard.parallel import ShardedBatchQueryEngine
from repro.shard.partition import (
    PLAN_SCHEMA,
    BinarySplitPartitioning,
    Partitioning,
    UniformGridPartitioning,
    grid_shapes,
    load_plan,
    partitioning_from_spec,
    save_plan,
    uniform_grid_for,
)
from repro.shard.search import PartitionSearcher, ScoredPartitioning
from repro.shard.sharded import ShardedDatabase, quiet_recording

__all__ = [
    "BinarySplitPartitioning",
    "CostBreakdown",
    "PLAN_SCHEMA",
    "PartitionSearcher",
    "Partitioning",
    "QueryOp",
    "ScoredPartitioning",
    "ShardCostModel",
    "ShardedBatchQueryEngine",
    "ShardedDatabase",
    "TraceWorkload",
    "UniformGridPartitioning",
    "UpdateOp",
    "grid_shapes",
    "load_plan",
    "measured_fanouts",
    "partitioning_from_spec",
    "percentile",
    "quiet_recording",
    "save_plan",
    "uniform_grid_for",
    "workload_from_events",
    "workload_from_trace",
]
