"""A spatially sharded moving-objects database.

:class:`ShardedDatabase` presents the :class:`MovingObjectDatabase`
API over N inner databases, one per shard of a
:class:`~repro.shard.partition.Partitioning`:

* **routing** — each mobile object is owned by exactly one shard,
  chosen from its insert position; ownership is sticky (an object that
  drives into another cell stays with its owner — the owner's
  *coverage* grows instead), so every update and position query is a
  single-shard operation.
* **fan-out pruning** — each shard tracks a coverage rectangle: the
  union of the route bounding boxes of every route its objects have
  ever been assigned.  Every index box of an o-plane is a sub-polyline
  of its route (:meth:`OPlane.travel_range` clamps to ``[0, length]``),
  so a query window disjoint from a shard's coverage cannot match any
  of its index boxes — that shard is skipped without changing the
  answer.  Pruning only engages when every shard runs a
  :class:`~repro.index.timespace.TimeSpaceIndex`; with no index (or
  the linear-scan baseline) candidate sets are the whole population
  and every shard must be consulted.
* **byte-identical merges** — may/must/candidate sets union across
  fanned shards (candidate sets partition by owner) and ``examined``
  counts sum, so every merged answer equals the single-database answer
  field for field.  Stationary objects live in one dedicated inner
  database and contribute to every fanned query exactly as the
  single-database stationary pass does.

The facade owns the flight-recorder stream: inner databases run
quietly and the facade emits the exact events a single database would
(plus one ``shard_route`` event per mobile insert), so sharded runs
record and replay like unsharded ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.core.policy import UpdatePolicy
from repro.core.position import PositionAttribute
from repro.dbms.database import MovingObjectDatabase
from repro.dbms.moving_object import MovingObjectRecord
from repro.dbms.query import (
    NearestAnswer,
    PositionAnswer,
    RangeAnswer,
    distance_range_between_intervals,
    distance_range_to_interval,
)
from repro.dbms.schema import Schema, SpatialKind
from repro.dbms.update_log import PositionUpdateMessage, UpdateLog
from repro.errors import QueryError, SchemaError, ShardError
from repro.geometry.bbox import Rect2D
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.index.rtree import SearchStats
from repro.index.timespace import TimeSpaceIndex
from repro.routes.route import Route, RouteDatabase
from repro.shard.partition import Partitioning
from repro.trace.events import (
    DB_CONFIG,
    INDEX_CONFIG,
    INSERT_MOBILE,
    INSERT_STATIONARY,
    REMOVE_OBJECT,
    ROUTE_REGISTER,
    SHARD_ROUTE,
    answer_digest,
)
from repro.trace.recorder import get_recorder, set_recorder


@contextmanager
def quiet_recording() -> Iterator[None]:
    """Suppress the ambient recorder for the duration of the block.

    The facade records the canonical event stream itself; inner
    per-shard databases would otherwise duplicate it.
    """
    rec = get_recorder()
    if not rec.enabled:
        yield
        return
    set_recorder(None)
    try:
        yield
    finally:
        set_recorder(rec)


class ShardedDatabase:
    """N :class:`MovingObjectDatabase` shards behind one facade.

    ``index_factory`` builds one index per shard (``None`` leaves the
    shards index-free, like ``MovingObjectDatabase(index=None)``).
    The schema and route catalogue are shared by every shard, so
    cross-shard answers classify through identical inputs.
    """

    def __init__(self, partitioning: Partitioning,
                 schema: Schema | None = None,
                 index_factory: Callable[[], Any] | None = None,
                 horizon: float = 120.0) -> None:
        if horizon <= 0:
            raise QueryError(f"horizon must be positive, got {horizon}")
        self.partitioning = partitioning
        self.num_shards = partitioning.num_shards
        self.schema = schema or Schema()
        self.routes = RouteDatabase()
        self.update_log = UpdateLog()
        self.horizon = horizon
        self.clock_time = 0.0
        with quiet_recording():
            self._shards = [
                MovingObjectDatabase(
                    schema=self.schema,
                    index=index_factory() if index_factory else None,
                    horizon=horizon,
                )
                for _ in range(self.num_shards)
            ]
            self._stationary_db = MovingObjectDatabase(
                schema=self.schema, index=None, horizon=horizon
            )
        for db in self._shards:
            db.routes = self.routes
        self._stationary_db.routes = self.routes
        #: ``object_id -> shard`` in insertion order, so ``object_ids``
        #: matches the single-database iteration order.
        self._owner: dict[str, int] = {}
        self._coverage: list[Rect2D | None] = [None] * self.num_shards
        self._covered_routes: list[set[str]] = [
            set() for _ in range(self.num_shards)
        ]
        rec = get_recorder()
        if rec.enabled:
            config: dict[str, Any] = {
                "horizon": horizon,
                "index": type(self._shards[0]._index).__name__
                if self._shards[0]._index is not None else "none",
                "shards": self.num_shards,
                "partitioning": partitioning.to_spec(),
            }
            if hasattr(self._shards[0]._index, "slab_minutes"):
                config["slab_minutes"] = self._shards[0]._index.slab_minutes
            rec.record(DB_CONFIG, **config)

    # ------------------------------------------------------------------
    # Shard introspection
    # ------------------------------------------------------------------

    @property
    def shard_databases(self) -> tuple[MovingObjectDatabase, ...]:
        """The inner per-shard databases, in shard order."""
        return tuple(self._shards)

    @property
    def stationary_database(self) -> MovingObjectDatabase:
        """The dedicated stationary-object database."""
        return self._stationary_db

    def shard_indexes(self) -> list[Any]:
        """Per-shard index instances (``None`` entries included)."""
        return [db._index for db in self._shards]

    def owner_of(self, object_id: str) -> int:
        """The shard owning a mobile object."""
        shard = self._owner.get(object_id)
        if shard is None:
            raise QueryError(f"unknown object id {object_id!r}")
        return shard

    def coverage_of(self, shard: int) -> Rect2D | None:
        """The shard's coverage rectangle (``None`` when empty)."""
        if not 0 <= shard < self.num_shards:
            raise ShardError(
                f"shard id {shard} out of range [0, {self.num_shards})"
            )
        return self._coverage[shard]

    def shard_sizes(self) -> list[int]:
        """Mobile object count per shard, in shard order."""
        counts = [0] * self.num_shards
        for shard in self._owner.values():
            counts[shard] += 1
        return counts

    def _prunable(self) -> bool:
        """Fan-out pruning is sound only over the time-space index.

        ``LinearScanIndex`` (and index-free shards) return the whole
        population for any window, so candidate sets do not partition
        by coverage and every shard must be consulted.
        """
        return all(
            isinstance(db._index, TimeSpaceIndex) for db in self._shards
        )

    def shards_for_window(self, window: Rect2D) -> tuple[int, ...]:
        """Shards whose coverage can contribute candidates to ``window``."""
        if not self._prunable():
            return tuple(range(self.num_shards))
        return tuple(
            shard for shard in range(self.num_shards)
            if self._coverage[shard] is not None
            and self._coverage[shard].intersects(window)
        )

    def _grow_coverage(self, shard: int, route: Route) -> None:
        if route.route_id in self._covered_routes[shard]:
            return
        self._covered_routes[shard].add(route.route_id)
        bbox = route.polyline.bounding_rect()
        current = self._coverage[shard]
        self._coverage[shard] = bbox if current is None \
            else current.union(bbox)

    # ------------------------------------------------------------------
    # Clock and validation (mirrors MovingObjectDatabase exactly)
    # ------------------------------------------------------------------

    def _advance_clock(self, t: float) -> None:
        if t < self.clock_time - 1e-9:
            raise QueryError(
                f"write at time {t} precedes database clock {self.clock_time} "
                "(updates are instantaneous and time-ordered)"
            )
        self.clock_time = max(self.clock_time, t)

    def _check_query_time(self, t: float) -> None:
        if t < self.clock_time - 1e-9:
            raise QueryError(
                f"query time {t} is in the past (database clock is "
                f"{self.clock_time}); position attributes are not versioned"
            )

    def _check_index_coverage(self, t: float) -> None:
        if self._shards[0]._index is None:
            return
        starts = [
            start for start in (
                db._earliest_starttime() for db in self._shards
            )
            if start is not None
        ]
        if not starts:
            return
        earliest_end = min(starts) + self.horizon
        if t > earliest_end + 1e-9:
            raise QueryError(
                f"query time {t} exceeds the indexed horizon "
                f"(coverage ends at {earliest_end}); raise the database "
                "horizon or query earlier"
            )

    # ------------------------------------------------------------------
    # Catalogue management
    # ------------------------------------------------------------------

    def register_route(self, route: Route) -> None:
        """Add a route to the shared route catalogue."""
        self.routes.add(route)
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                ROUTE_REGISTER, route_id=route.route_id, name=route.name,
                vertices=[[v.x, v.y] for v in route.polyline.vertices],
            )

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def insert_moving_object(self, object_id: str, class_name: str,
                             route_id: str, t: float, position: Point,
                             direction: int, speed: float,
                             policy: UpdatePolicy, max_speed: float,
                             attributes: dict[str, Any] | None = None) -> MovingObjectRecord:
        """Insert a mobile object into its owning shard.

        Validation repeats the single-database sequence (schema, class
        kind, duplicate id, route, on-route position, clock) against
        facade state, so the raised errors are identical; the owning
        shard then re-runs it against its own (strictly weaker) state.
        """
        object_class = self.schema.get(class_name)
        if not object_class.is_mobile_point:
            raise SchemaError(
                f"class {class_name!r} is not a mobile point class"
            )
        if object_id in self._owner:
            raise SchemaError(f"duplicate object id {object_id!r}")
        route = self.routes.get(route_id)
        PositionAttribute(
            starttime=t,
            route_id=route_id,
            start_x=position.x,
            start_y=position.y,
            direction=direction,
            speed=speed,
            policy=policy.name,
        )
        route.travel_distance_of(position, direction)
        self._advance_clock(t)
        shard = self.partitioning.shard_of_point(position.x, position.y)
        with quiet_recording():
            record = self._shards[shard].insert_moving_object(
                object_id, class_name, route_id, t, position,
                direction, speed, policy, max_speed,
                attributes=attributes,
            )
        self._owner[object_id] = shard
        self._grow_coverage(shard, route)
        rec = get_recorder()
        if rec.enabled:
            from repro.core.serialize import policy_to_spec

            rec.record(
                INSERT_MOBILE, time=t, object_id=object_id,
                class_name=class_name, route_id=route_id,
                position=[position.x, position.y], direction=direction,
                speed=speed, max_speed=max_speed,
                policy=policy_to_spec(policy), attributes=attributes,
            )
            rec.record(SHARD_ROUTE, time=t, object_id=object_id,
                       shard=shard)
        return record

    def insert_stationary_object(self, object_id: str, class_name: str,
                                 position: Point,
                                 attributes: dict[str, Any] | None = None) -> None:
        """Insert a stationary object (kept outside the shard ring)."""
        object_class = self.schema.get(class_name)
        if object_class.spatial_kind is not SpatialKind.POINT:
            raise SchemaError(
                f"class {class_name!r} is not a point class"
            )
        if object_class.is_mobile_point:
            raise SchemaError(
                f"class {class_name!r} is mobile; use insert_moving_object"
            )
        if object_id in self._owner:
            raise SchemaError(f"duplicate object id {object_id!r}")
        with quiet_recording():
            self._stationary_db.insert_stationary_object(
                object_id, class_name, position, attributes=attributes
            )
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                INSERT_STATIONARY, object_id=object_id,
                class_name=class_name,
                position=[position.x, position.y], attributes=attributes,
            )

    def stationary_position(self, object_id: str) -> Point:
        """The fixed position of a stationary object."""
        return self._stationary_db.stationary_position(object_id)

    def remove_object(self, object_id: str) -> None:
        """Drop an object from its shard (or the stationary store)."""
        if object_id in self._stationary_db._stationary:
            with quiet_recording():
                self._stationary_db.remove_object(object_id)
            rec = get_recorder()
            if rec.enabled:
                rec.record(REMOVE_OBJECT, object_id=object_id)
            return
        shard = self.owner_of(object_id)
        with quiet_recording():
            self._shards[shard].remove_object(object_id)
        del self._owner[object_id]
        rec = get_recorder()
        if rec.enabled:
            rec.record(REMOVE_OBJECT, object_id=object_id)

    def record(self, object_id: str) -> MovingObjectRecord:
        """The server-side record of one mobile object."""
        shard = self._owner.get(object_id)
        if shard is None:
            raise QueryError(f"unknown object id {object_id!r}")
        return self._shards[shard].record(object_id)

    def object_ids(self) -> list[str]:
        """Ids of all mobile objects, in insertion order."""
        return list(self._owner)

    def stationary_ids(self) -> list[str]:
        return self._stationary_db.stationary_ids()

    def stationary_id_set(self) -> frozenset[str]:
        return self._stationary_db.stationary_id_set()

    def generation_of(self, object_id: str) -> int:
        return self.record(object_id).generation

    def oplane_of(self, object_id: str):
        """The object's current o-plane, from its owner shard."""
        return self._shards[self.owner_of(object_id)].oplane_of(object_id)

    def __len__(self) -> int:
        return len(self._owner) + len(self._stationary_db._stationary)

    # ------------------------------------------------------------------
    # Update processing
    # ------------------------------------------------------------------

    def process_update(self, message: PositionUpdateMessage) -> None:
        """Route a position update to the owning shard."""
        shard = self.owner_of(message.object_id)
        self._advance_clock(message.time)
        self.update_log.record(message)
        with quiet_recording():
            self._shards[shard].process_update(message)
        if message.route_id is not None and message.route_id in self.routes:
            self._grow_coverage(shard, self.routes.get(message.route_id))
        registry_shard_update(shard)

    def rebuild_index(self, slab_minutes: float = 5.0,
                      max_entries: int = 8, min_entries: int = 3) -> list[Any]:
        """Rebuild every shard's time-space index at a new granularity."""
        with quiet_recording():
            indexes = [
                db.rebuild_index(
                    slab_minutes=slab_minutes, max_entries=max_entries,
                    min_entries=min_entries,
                )
                for db in self._shards
            ]
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                INDEX_CONFIG, slab_minutes=slab_minutes,
                max_entries=max_entries, min_entries=min_entries,
            )
        return indexes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def position_of(self, object_id: str, t: float) -> PositionAnswer:
        """Single-shard point query: answered by the owner alone."""
        self._check_query_time(t)
        shard = self._owner.get(object_id)
        if shard is None:
            raise QueryError(f"unknown object id {object_id!r}")
        with quiet_recording():
            answer = self._shards[shard].position_of(object_id, t)
        rec = get_recorder()
        if rec.enabled:
            rec.record_query("position", answer_digest(answer), time=t,
                             object_id=object_id)
        return answer

    def range_query(self, polygon: Polygon, t: float,
                    stats: SearchStats | None = None,
                    where: dict[str, Any] | None = None,
                    class_name: str | None = None) -> RangeAnswer:
        """Fan a polygon query to covered shards and merge the answers."""
        self._check_query_time(t)
        self._check_index_coverage(t)
        fanned = self.shards_for_window(polygon.bounding_rect)
        may: set[str] = set()
        must: set[str] = set()
        candidates: set[str] = set()
        examined = 0
        with quiet_recording():
            for shard in fanned:
                sub = self._shards[shard].range_query(
                    polygon, t, stats, where, class_name
                )
                may |= sub.may
                must |= sub.must
                candidates |= sub.candidates
                examined += sub.examined
            stationary = self._stationary_db.range_query(
                polygon, t, None, where, class_name
            )
        may |= stationary.may
        must |= stationary.must
        examined += stationary.examined
        answer = RangeAnswer(
            time=t,
            may=frozenset(may),
            must=frozenset(must),
            examined=examined,
            candidates=frozenset(candidates),
        )
        self._publish_fanout("range", len(fanned))
        rec = get_recorder()
        if rec.enabled:
            rec.record_query(
                "range", answer_digest(answer), time=t,
                polygon=[[v.x, v.y] for v in polygon.vertices],
                where=where, class_name=class_name,
            )
        return answer

    def within_distance(self, center: Point, radius: float, t: float,
                        stats: SearchStats | None = None,
                        where: dict[str, Any] | None = None,
                        class_name: str | None = None) -> RangeAnswer:
        """Fan a distance query to covered shards and merge the answers."""
        self._check_query_time(t)
        self._check_index_coverage(t)
        if radius < 0:
            raise QueryError(f"radius must be nonnegative, got {radius}")
        window = Rect2D(
            center.x - radius, center.y - radius,
            center.x + radius, center.y + radius,
        )
        fanned = self.shards_for_window(window)
        may: set[str] = set()
        must: set[str] = set()
        candidates: set[str] = set()
        examined = 0
        with quiet_recording():
            for shard in fanned:
                sub = self._shards[shard].within_distance(
                    center, radius, t, stats, where, class_name
                )
                may |= sub.may
                must |= sub.must
                candidates |= sub.candidates
                examined += sub.examined
            stationary = self._stationary_db.within_distance(
                center, radius, t, None, where, class_name
            )
        may |= stationary.may
        must |= stationary.must
        examined += stationary.examined
        answer = RangeAnswer(
            time=t,
            may=frozenset(may),
            must=frozenset(must),
            examined=examined,
            candidates=frozenset(candidates),
        )
        self._publish_fanout("within", len(fanned))
        rec = get_recorder()
        if rec.enabled:
            rec.record_query(
                "within", answer_digest(answer), time=t,
                center=[center.x, center.y], radius=radius,
                where=where, class_name=class_name,
            )
        return answer

    def within_distance_of_object(self, anchor_id: str, radius: float,
                                  t: float,
                                  where: dict[str, Any] | None = None,
                                  class_name: str | None = None) -> RangeAnswer:
        """Proximity query: anchor from its owner, candidates fanned."""
        self._check_query_time(t)
        if radius < 0:
            raise QueryError(f"radius must be nonnegative, got {radius}")
        self._check_index_coverage(t)
        anchor = self.record(anchor_id)
        anchor_route = self.routes.get(anchor.attribute.route_id)
        anchor_interval = anchor.uncertainty(anchor_route, t)
        bbox = anchor_interval.geometry(anchor_route).bounding_rect()
        window = bbox.expanded(radius)
        fanned = self.shards_for_window(window)
        may: set[str] = set()
        must: set[str] = set()
        merged_candidates: set[str] = set()
        examined = 0
        for shard in fanned:
            db = self._shards[shard]
            found = db._candidates(window, t, None)
            found = set(db._filter_candidates(found, where, class_name))
            found.discard(anchor_id)
            for object_id in found:
                record = db._records[object_id]
                route = self.routes.get(record.attribute.route_id)
                interval = record.uncertainty(route, t)
                minimum, maximum = distance_range_between_intervals(
                    anchor_interval, anchor_route, interval, route
                )
                if minimum > radius:
                    continue
                may.add(object_id)
                if maximum <= radius:
                    must.add(object_id)
            merged_candidates |= found
            examined += len(found)
        stat_db = self._stationary_db
        for object_id in stat_db._filter_candidates(
            stat_db.stationary_id_set(), where, class_name
        ):
            examined += 1
            point = stat_db._stationary[object_id][1]
            minimum, maximum = distance_range_to_interval(
                point, anchor_interval, anchor_route
            )
            if minimum > radius:
                continue
            may.add(object_id)
            if maximum <= radius:
                must.add(object_id)
        answer = RangeAnswer(
            time=t,
            may=frozenset(may),
            must=frozenset(must),
            examined=examined,
            candidates=frozenset(merged_candidates),
        )
        self._publish_fanout("proximity", len(fanned))
        rec = get_recorder()
        if rec.enabled:
            rec.record_query(
                "proximity", answer_digest(answer), time=t,
                object_id=anchor_id, radius=radius,
                where=where, class_name=class_name,
            )
        return answer

    def nearest(self, center: Point, k: int, t: float,
                where: dict[str, Any] | None = None,
                class_name: str | None = None) -> list[NearestAnswer]:
        """k-nearest across all shards (distance order defeats pruning)."""
        self._check_query_time(t)
        if k < 1:
            raise QueryError(f"k must be positive, got {k}")
        entries: list[NearestAnswer] = []
        for db in self._shards:
            candidates = db._filter_candidates(
                set(db._records), where, class_name
            )
            for object_id in candidates:
                record = db._records[object_id]
                route = self.routes.get(record.attribute.route_id)
                interval = record.uncertainty(route, t)
                minimum, maximum = distance_range_to_interval(
                    center, interval, route
                )
                entries.append(NearestAnswer(object_id, minimum, maximum))
        stat_db = self._stationary_db
        for object_id in stat_db._filter_candidates(
            stat_db.stationary_id_set(), where, class_name
        ):
            distance = stat_db._stationary[object_id][1].distance_to(center)
            entries.append(NearestAnswer(object_id, distance, distance))
        entries.sort(key=lambda e: (e.min_distance, e.object_id))
        top = entries[:k]
        results: list[NearestAnswer] = []
        for rank, entry in enumerate(top):
            later_minimum = min(
                (other.min_distance for other in entries[rank + 1:]),
                default=float("inf"),
            )
            results.append(
                NearestAnswer(
                    object_id=entry.object_id,
                    min_distance=entry.min_distance,
                    max_distance=entry.max_distance,
                    certain=entry.max_distance <= later_minimum,
                )
            )
        self._publish_fanout("nearest", self.num_shards)
        rec = get_recorder()
        if rec.enabled:
            rec.record_query(
                "nearest", answer_digest(results), time=t,
                center=[center.x, center.y], k=k,
                where=where, class_name=class_name,
            )
        return results

    # ------------------------------------------------------------------
    # Accounting and observability
    # ------------------------------------------------------------------

    def message_count(self, object_id: str | None = None) -> int:
        """Update messages received (optionally for one object)."""
        if object_id is None:
            return self.update_log.total_messages
        return self.update_log.count_for(object_id)

    def communication_cost(self) -> float:
        """Total message cost across all shards."""
        total = 0.0
        for message in self.update_log.messages():
            shard = self._owner.get(message.object_id)
            if shard is None:
                continue
            record = self._shards[shard]._records.get(message.object_id)
            if record is None:
                continue
            total += record.policy.update_cost
        return total

    def publish_shard_gauges(self) -> None:
        """Export per-shard population gauges to the metrics registry."""
        from repro.obs.registry import get_registry

        registry = get_registry()
        if not registry.enabled:
            return
        sizes = self.shard_sizes()
        for shard in range(self.num_shards):
            registry.gauge(
                "shard_objects",
                help="Mobile objects owned by each shard.",
                shard=str(shard),
            ).set(sizes[shard])

    def _publish_fanout(self, kind: str, fanned: int) -> None:
        from repro.obs.live.windows import get_live
        from repro.obs.registry import get_registry

        live = get_live()
        if live.enabled:
            live.observe("shard_fanout", float(fanned),
                         buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0))
            live.inc("shard_queries")
        registry = get_registry()
        if not registry.enabled:
            return
        registry.histogram(
            "shard_query_fanout",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            help="Shards consulted per fanned query.",
            kind=kind,
        ).observe(float(fanned))
        registry.counter(
            "shard_queries_total",
            help="Queries fanned out by the sharded facade, by kind.",
            kind=kind,
        ).inc()


def registry_shard_update(shard: int) -> None:
    """Count one routed update against its shard label."""
    from repro.obs.registry import get_registry

    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "shard_updates_total",
        help="Position updates routed to each shard.",
        shard=str(shard),
    ).inc()


__all__ = [
    "ShardedDatabase",
    "quiet_recording",
    "registry_shard_update",
]
