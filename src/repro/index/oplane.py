"""O-planes: an object's possible positions in (x, y, t) time-space (§4.1).

For a moving object o with declared speed ``v``, the paper defines two
distance functions of elapsed time ``t``:

    u(t) = v t + BF(t)      (upper-o: farthest o can be along the route)
    l(t) = v t - BS(t)      (lower-o: nearest o can be)

where ``BF``/``BS`` are the policy's fast/slow deviation bounds.  The
*o-plane* is the set of uncertainty intervals — the route strip between
the points at distances ``l(t)`` and ``u(t)`` — one per time instant
``t >= 0``.

For indexing, the o-plane is conservatively decomposed into 3-D boxes
over *time slabs*: for each slab the travel-range swept by the
uncertainty interval is computed, the corresponding route strip's 2-D
bounding rectangle taken, and the box extruded over the slab's absolute
time span.  Any point of the o-plane lies in some slab box, so index
search can never miss an object (false positives are filtered by the
exact refinement of Theorems 5–6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import DeviationBounds
from repro.core.position import PositionAttribute
from repro.core.uncertainty import UncertaintyInterval, uncertainty_interval
from repro.errors import IndexError_
from repro.geometry.bbox import Box3D
from repro.routes.route import Route


@dataclass(frozen=True, slots=True)
class OPlane:
    """The o-plane of one position-attribute value.

    ``start_time`` is the attribute's ``P.starttime``; the plane covers
    absolute times ``[start_time, start_time + horizon]`` (the paper's
    cutoff ``Z`` — an upper limit on when the trip ends — bounds the
    horizon).
    """

    attribute: PositionAttribute
    route: Route
    bounds: DeviationBounds
    horizon: float

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise IndexError_(f"horizon must be positive, got {self.horizon}")
        if self.route.route_id != self.attribute.route_id:
            raise IndexError_(
                f"attribute is on route {self.attribute.route_id!r}, "
                f"got {self.route.route_id!r}"
            )

    @property
    def start_time(self) -> float:
        return self.attribute.starttime

    @property
    def end_time(self) -> float:
        return self.attribute.starttime + self.horizon

    def covers_time(self, t: float) -> bool:
        """True when ``t`` lies inside the plane's time span."""
        return self.start_time - 1e-9 <= t <= self.end_time + 1e-9

    def uncertainty_at(self, t: float) -> UncertaintyInterval:
        """The uncertainty interval at absolute time ``t``."""
        if not self.covers_time(t):
            raise IndexError_(
                f"time {t} outside o-plane span "
                f"[{self.start_time}, {self.end_time}]"
            )
        return uncertainty_interval(self.attribute, self.route, self.bounds, t)

    def travel_range(self, elapsed_lo: float, elapsed_hi: float,
                     samples: int = 4) -> tuple[float, float]:
        """Conservative travel-distance range over an elapsed-time span.

        ``l`` and ``u`` are piecewise-smooth with at most one interior
        kink per slab (where a bound's min switches branch), so endpoint
        plus interior sampling with a small envelope margin is a sound
        over-approximation for the slab widths used here.
        """
        if elapsed_hi < elapsed_lo:
            raise IndexError_("elapsed_hi must be >= elapsed_lo")
        start_travel = self.route.travel_distance_of(
            self.attribute.start_point, self.attribute.direction
        )
        v = self.attribute.speed
        lows: list[float] = []
        highs: list[float] = []
        for i in range(samples + 1):
            elapsed = elapsed_lo + (elapsed_hi - elapsed_lo) * i / samples
            center = start_travel + v * elapsed
            lows.append(center - self.bounds.slow(elapsed))
            highs.append(center + self.bounds.fast(elapsed))
        # Envelope margin: within a slab each curve moves at most at the
        # maximum slope between samples; v covers the centre drift and the
        # bound slopes are at most v (slow) / declared-gap (fast), both
        # bounded by the per-sample drift of the sampled extremes.  A
        # half-sample of centre drift is a safe cushion for the slabs and
        # sample counts used by the index.
        margin = v * (elapsed_hi - elapsed_lo) / max(samples, 1)
        lo = max(min(lows) - margin, 0.0)
        hi = min(max(highs) + margin, self.route.length)
        if lo > hi:
            lo = hi
        return lo, hi

    def boxes(self, slab_minutes: float = 5.0) -> list[Box3D]:
        """Decompose the o-plane into time-slab boxes for the R-tree."""
        if slab_minutes <= 0:
            raise IndexError_(f"slab_minutes must be positive, got {slab_minutes}")
        boxes: list[Box3D] = []
        elapsed = 0.0
        while elapsed < self.horizon - 1e-12:
            slab_end = min(elapsed + slab_minutes, self.horizon)
            lo, hi = self.travel_range(elapsed, slab_end)
            strip = self.route.interval_polyline(
                lo, hi, self.attribute.direction
            )
            rect = strip.bounding_rect()
            boxes.append(
                Box3D.from_rect(
                    rect,
                    self.start_time + elapsed,
                    self.start_time + slab_end,
                )
            )
            elapsed = slab_end
        return boxes

    def __repr__(self) -> str:
        return (
            f"OPlane(route={self.route.route_id!r}, "
            f"start={self.start_time:.2f}, horizon={self.horizon:.1f})"
        )

__all__ = [
    "OPlane",
]
