"""Theorems 5 and 6 as executable predicates (paper §4.1.2).

For a query polygon ``G`` at time ``t0`` and a moving object ``o``:

* **Theorem 5** — o *may* be in G at ``t0`` iff the region ``R_G(t0)``
  (the polygon at that time) intersects the o-plane; equivalently, iff
  G intersects o's uncertainty interval at ``t0``.
* **Theorem 6** — o *must* be in G at ``t0`` iff additionally both
  interval endpoints ``L(t0)`` and ``U(t0)`` lie in ``R_G(t0)`` — for
  the closed route strips produced here that means the entire interval
  lies inside G.

These operate directly on an :class:`~repro.index.oplane.OPlane`; the
DBMS applies the same geometry via
:func:`repro.dbms.query.classify_against_polygon` after retrieving
candidates from the index.
"""

from __future__ import annotations

from repro.geometry.polygon import Polygon
from repro.index.oplane import OPlane


def may_be_in(plane: OPlane, polygon: Polygon, t: float) -> bool:
    """Theorem 5: ``R_G(t0)`` intersects the o-plane."""
    interval = plane.uncertainty_at(t)
    geometry = interval.geometry(plane.route)
    return polygon.intersects_polyline(geometry)


def must_be_in(plane: OPlane, polygon: Polygon, t: float) -> bool:
    """Theorem 6: the whole uncertainty interval lies in ``R_G(t0)``.

    Implemented as full containment of the interval geometry, which for
    convex G coincides with the paper's endpoint formulation and is
    sound for arbitrary simple polygons (an interval can leave and
    re-enter a non-convex region between contained endpoints).
    """
    interval = plane.uncertainty_at(t)
    geometry = interval.geometry(plane.route)
    if not polygon.intersects_polyline(geometry):
        return False
    return polygon.contains_polyline(geometry)

__all__ = [
    "may_be_in",
    "must_be_in",
]
