"""A from-scratch R-tree over 3-D boxes (Guttman 1984, quadratic split).

The paper prescribes "a 3-dimensional spatial index, e.g. an R+-tree"
over (x, y, t) time-space.  We implement the classic R-tree: it is the
canonical member of the family, supports the required operations
(insert, delete, box-intersection search), and preserves the property
the paper relies on — sublinear candidate retrieval for queries that
touch a small part of the indexed space.

Implementation notes
--------------------
* Fanout is configurable (``max_entries``/``min_entries``); defaults
  follow the usual M = 8, m = 3 for in-memory trees.
* Many indexed boxes are volume-degenerate (an uncertainty interval
  along an axis-parallel route has zero spatial height).  All size
  comparisons therefore use a *measure* that blends volume with margin,
  keeping ChooseLeaf and the quadratic split discriminating even for
  flat boxes.
* Searches report :class:`SearchStats` (nodes visited, leaf entries
  tested) so benchmarks can demonstrate sublinearity directly rather
  than inferring it from wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.errors import IndexError_
from repro.geometry.bbox import Box3D
from repro.obs.metrics import COUNT_BUCKETS
from repro.obs.registry import get_registry

#: Weight of the margin term in the box measure; small enough that
#: volume dominates whenever volumes are non-degenerate.
_MARGIN_WEIGHT = 1e-6


def _measure(box: Box3D) -> float:
    """Size surrogate robust to volume-degenerate boxes."""
    return box.volume + _MARGIN_WEIGHT * box.margin


@dataclass(slots=True)
class _Entry:
    """A node slot: a box plus either a payload (leaf) or a child node."""

    box: Box3D
    payload: Hashable | None = None
    child: "_Node | None" = None


@dataclass(slots=True)
class _Node:
    is_leaf: bool
    entries: list[_Entry] = field(default_factory=list)
    parent: "_Node | None" = None

    def bounding_box(self) -> Box3D:
        if not self.entries:
            raise IndexError_("empty node has no bounding box")
        box = self.entries[0].box
        for entry in self.entries[1:]:
            box = box.union(entry.box)
        return box


@dataclass(slots=True)
class SearchStats:
    """Work accounting for one search (sublinearity evidence)."""

    nodes_visited: int = 0
    entries_tested: int = 0
    results: int = 0


class RTree:
    """An R-tree mapping 3-D boxes to hashable payloads.

    The same payload may be inserted under several boxes (an o-plane is
    several slab boxes); searches may then report it once per matching
    box, so callers typically collect results into a set.
    """

    def __init__(self, max_entries: int = 8, min_entries: int = 3) -> None:
        if max_entries < 2:
            raise IndexError_(f"max_entries must be >= 2, got {max_entries}")
        if not 1 <= min_entries <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, max_entries//2], got {min_entries}"
            )
        self.max_entries = max_entries
        self.min_entries = min_entries
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        """Number of leaf entries currently stored."""
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            height += 1
        return height

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return count

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, items: list[tuple[Box3D, Hashable]],
                  max_entries: int = 8, min_entries: int = 3) -> "RTree":
        """Build a packed tree from all items at once (STR packing).

        Sort-Tile-Recursive: sort by x-centre, tile into slabs, sort
        each slab by y-centre, tile again, sort each tile by t-centre,
        and pack runs of ``max_entries`` into leaves; then pack the
        leaves the same way level by level.  Packed trees are flatter
        and tighter than incrementally grown ones, which shows up as
        fewer entries tested per query.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not items:
            return tree
        entries = [
            _Entry(box=box, payload=payload) for box, payload in items
        ]
        level = [
            _Node(is_leaf=True, entries=group)
            for group in cls._str_tile(entries, max_entries, min_entries)
        ]
        tree._size = len(entries)
        while len(level) > 1:
            parent_entries = []
            for node in level:
                parent_entries.append(
                    _Entry(box=node.bounding_box(), child=node)
                )
            groups = cls._str_tile(parent_entries, max_entries, min_entries)
            next_level = []
            for group in groups:
                parent = _Node(is_leaf=False, entries=group)
                for entry in group:
                    assert entry.child is not None
                    entry.child.parent = parent
                next_level.append(parent)
            level = next_level
        tree._root = level[0]
        return tree

    @staticmethod
    def _str_tile(entries: list[_Entry], max_entries: int,
                  min_entries: int) -> list[list[_Entry]]:
        """Partition entries into spatially coherent groups of
        ``<= max_entries`` (and, except for a single-group result,
        ``>= min_entries``)."""
        def center(entry: _Entry, axis: int) -> float:
            box = entry.box
            if axis == 0:
                return (box.min_x + box.max_x) / 2.0
            if axis == 1:
                return (box.min_y + box.max_y) / 2.0
            return (box.min_t + box.max_t) / 2.0

        def chunk(run: list[_Entry], size: int) -> list[list[_Entry]]:
            return [run[i:i + size] for i in range(0, len(run), size)]

        n = len(entries)
        if n <= max_entries:
            return [entries]
        num_groups = -(-n // max_entries)
        slices_x = max(int(round(num_groups ** (1.0 / 3.0))), 1)
        per_x = -(-n // slices_x)
        by_x = sorted(entries, key=lambda e: center(e, 0))
        groups: list[list[_Entry]] = []
        for x_run in chunk(by_x, per_x):
            groups_in_run = -(-len(x_run) // max_entries)
            slices_y = max(int(round(groups_in_run ** 0.5)), 1)
            per_y = -(-len(x_run) // slices_y)
            by_y = sorted(x_run, key=lambda e: center(e, 1))
            for y_run in chunk(by_y, per_y):
                by_t = sorted(y_run, key=lambda e: center(e, 2))
                groups.extend(chunk(by_t, max_entries))
        # Fill-factor repair: a trailing group smaller than min_entries
        # borrows from its (necessarily full-enough) predecessor.
        repaired: list[list[_Entry]] = []
        for group in groups:
            if (repaired and len(group) < min_entries
                    and len(repaired[-1]) > min_entries):
                needed = min_entries - len(group)
                take = min(needed, len(repaired[-1]) - min_entries)
                for _ in range(take):
                    group.insert(0, repaired[-1].pop())
            repaired.append(group)
        # Any still-underfull group merges into its predecessor when the
        # combined size fits; otherwise rebalance the pair evenly.
        final: list[list[_Entry]] = []
        for group in repaired:
            if final and len(group) < min_entries:
                combined = final[-1] + group
                if len(combined) <= max_entries:
                    final[-1] = combined
                    continue
                half = len(combined) // 2
                final[-1] = combined[:half]
                group = combined[half:]
            final.append(group)
        return final

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, box: Box3D, payload: Hashable) -> None:
        """Insert ``payload`` under ``box``."""
        leaf = self._choose_leaf(self._root, box)
        leaf.entries.append(_Entry(box=box, payload=payload))
        self._size += 1
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: _Node, box: Box3D) -> _Node:
        while not node.is_leaf:
            best: _Entry | None = None
            best_key: tuple[float, float] | None = None
            for entry in node.entries:
                enlargement = _measure(entry.box.union(box)) - _measure(entry.box)
                key = (enlargement, _measure(entry.box))
                if best_key is None or key < best_key:
                    best_key = key
                    best = entry
            assert best is not None and best.child is not None
            node = best.child
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                # Grow the tree: new root over node and sibling.
                new_root = _Node(is_leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append(
                        _Entry(box=child.bounding_box(), child=child)
                    )
                self._root = new_root
                return
            sibling.parent = parent
            parent.entries.append(
                _Entry(box=sibling.bounding_box(), child=sibling)
            )
            self._refresh_parent_boxes(node)
            node = parent
        self._refresh_parent_boxes(node)

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: distribute ``node``'s entries, return sibling."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = group_a[0].box
        box_b = group_b[0].box
        remaining = [
            e for i, e in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force assignment when one group must absorb the rest to
            # reach the minimum fill.
            needed_a = self.min_entries - len(group_a)
            needed_b = self.min_entries - len(group_b)
            if needed_a >= len(remaining):
                group_a.extend(remaining)
                for entry in remaining:
                    box_a = box_a.union(entry.box)
                remaining = []
                break
            if needed_b >= len(remaining):
                group_b.extend(remaining)
                for entry in remaining:
                    box_b = box_b.union(entry.box)
                remaining = []
                break
            index, prefer_a = self._pick_next(remaining, box_a, box_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                box_a = box_a.union(entry.box)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.box)
        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf, entries=group_b)
        if not sibling.is_leaf:
            for entry in sibling.entries:
                assert entry.child is not None
                entry.child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[_Entry]) -> tuple[int, int]:
        """The pair wasting the most space when grouped together."""
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].box.union(entries[j].box)
                waste = (
                    _measure(combined)
                    - _measure(entries[i].box)
                    - _measure(entries[j].box)
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(remaining: list[_Entry], box_a: Box3D,
                   box_b: Box3D) -> tuple[int, bool]:
        """The entry with the strongest group preference, and that group."""
        best_index = 0
        best_difference = -1.0
        best_prefer_a = True
        for i, entry in enumerate(remaining):
            growth_a = _measure(box_a.union(entry.box)) - _measure(box_a)
            growth_b = _measure(box_b.union(entry.box)) - _measure(box_b)
            difference = abs(growth_a - growth_b)
            if difference > best_difference:
                best_difference = difference
                best_index = i
                best_prefer_a = growth_a < growth_b
        return best_index, best_prefer_a

    def _refresh_parent_boxes(self, node: _Node) -> None:
        """Recompute covering boxes on the path from ``node`` to the root."""
        child = node
        parent = node.parent
        while parent is not None:
            for entry in parent.entries:
                if entry.child is child:
                    entry.box = child.bounding_box()
                    break
            child = parent
            parent = parent.parent

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, box: Box3D, stats: SearchStats | None = None) -> list[Hashable]:
        """Payloads of all leaf entries whose boxes intersect ``box``.

        When observability is enabled, the per-search work accounting
        (nodes visited, entries tested, result count) is also published
        to the active metrics registry — the same numbers
        :class:`SearchStats` reports, but aggregated across every
        search of a run instead of one call at a time.
        """
        registry = get_registry()
        observed = registry.enabled
        if observed and stats is None:
            stats = SearchStats()
        base_nodes = stats.nodes_visited if stats is not None else 0
        base_entries = stats.entries_tested if stats is not None else 0
        results: list[Hashable] = []
        if self._size > 0:
            stack = [self._root]
            while stack:
                node = stack.pop()
                if stats is not None:
                    stats.nodes_visited += 1
                for entry in node.entries:
                    if stats is not None:
                        stats.entries_tested += 1
                    if not entry.box.intersects(box):
                        continue
                    if node.is_leaf:
                        results.append(entry.payload)
                    else:
                        assert entry.child is not None
                        stack.append(entry.child)
        if stats is not None:
            stats.results = len(results)
        if observed:
            registry.counter(
                "index_searches_total", help="R-tree searches executed.",
            ).inc()
            registry.counter(
                "index_nodes_visited_total",
                help="R-tree nodes visited across all searches.",
            ).inc(stats.nodes_visited - base_nodes)
            registry.counter(
                "index_entries_tested_total",
                help="R-tree entries intersection-tested across all searches.",
            ).inc(stats.entries_tested - base_entries)
            registry.histogram(
                "index_search_results",
                help="Result-set size per R-tree search.",
                buckets=COUNT_BUCKETS,
            ).observe(len(results))
        return results

    def search_many(self, boxes: list[Box3D],
                    stats: SearchStats | None = None) -> list[list[Hashable]]:
        """Answer many box searches in a single tree traversal.

        Equivalent to ``[self.search(b) for b in boxes]`` up to result
        order within each answer (callers collect into sets), but each
        tree node is visited at most once: the traversal carries the
        list of still-active queries per subtree, so node access and
        per-entry loop overhead are amortised over the whole batch
        instead of paid once per query.

        ``stats`` aggregates work across the batch; ``results`` counts
        the total matches over all queries.  When observability is
        enabled, batch-level counters (`index_multi_*`) record the
        traversal sharing so the amortisation is measurable.
        """
        results: list[list[Hashable]] = [[] for _ in boxes]
        if not boxes:
            return results
        registry = get_registry()
        observed = registry.enabled
        if observed and stats is None:
            stats = SearchStats()
        base_nodes = stats.nodes_visited if stats is not None else 0
        base_entries = stats.entries_tested if stats is not None else 0
        shared_visits = 0
        nodes_visited = 0
        if self._size > 0:
            # Sort queries spatially so active lists stay contiguous
            # runs of similar boxes (cheap, and deterministic).
            order = sorted(
                range(len(boxes)),
                key=lambda i: (boxes[i].min_t, boxes[i].min_x, boxes[i].min_y),
            )
            stack: list[tuple[_Node, list[int]]] = [(self._root, order)]
            while stack:
                node, active = stack.pop()
                nodes_visited += 1
                shared_visits += len(active)
                if stats is not None:
                    stats.nodes_visited += 1
                is_leaf = node.is_leaf
                for entry in node.entries:
                    if stats is not None:
                        stats.entries_tested += 1
                    entry_box = entry.box
                    matching = [
                        i for i in active if entry_box.intersects(boxes[i])
                    ]
                    if not matching:
                        continue
                    if is_leaf:
                        payload = entry.payload
                        for i in matching:
                            results[i].append(payload)
                    else:
                        assert entry.child is not None
                        stack.append((entry.child, matching))
        total_results = sum(len(found) for found in results)
        if stats is not None:
            stats.results += total_results
        if observed:
            registry.counter(
                "index_multi_searches_total",
                help="Batched R-tree traversals executed.",
            ).inc()
            registry.counter(
                "index_multi_search_queries_total",
                help="Query boxes answered by batched traversals.",
            ).inc(len(boxes))
            registry.counter(
                "index_nodes_visited_total",
                help="R-tree nodes visited across all searches.",
            ).inc(stats.nodes_visited - base_nodes)
            registry.counter(
                "index_entries_tested_total",
                help="R-tree entries intersection-tested across all searches.",
            ).inc(stats.entries_tested - base_entries)
            if nodes_visited:
                registry.histogram(
                    "index_multi_node_share",
                    help="Queries sharing each node visit of a batched "
                         "traversal (mean per batch).",
                    buckets=COUNT_BUCKETS,
                ).observe(shared_visits / nodes_visited)
            registry.histogram(
                "index_search_results",
                help="Result-set size per R-tree search.",
                buckets=COUNT_BUCKETS,
            ).observe(total_results)
        return results

    def search_at_time(self, min_x: float, min_y: float, max_x: float,
                       max_y: float, t: float,
                       stats: SearchStats | None = None) -> list[Hashable]:
        """Search with a planar window at one instant (``R_G(t0)``'s bbox)."""
        return self.search(
            Box3D(min_x, min_y, t, max_x, max_y, t), stats
        )

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, box: Box3D, payload: Hashable) -> bool:
        """Remove one leaf entry matching ``(box, payload)`` exactly.

        Returns True when an entry was removed, False when no exact
        match exists.
        """
        leaf = self._find_leaf(self._root, box, payload)
        if leaf is None:
            return False
        for i, entry in enumerate(leaf.entries):
            if entry.payload == payload and entry.box == box:
                del leaf.entries[i]
                break
        self._size -= 1
        self._condense_tree(leaf)
        return True

    def delete_payload(self, payload: Hashable) -> int:
        """Remove *all* leaf entries carrying ``payload``; returns count.

        This is the operation the time-space index uses to drop an old
        o-plane (several boxes per object).
        """
        matches: list[tuple[_Node, _Entry]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                matches.extend(
                    (node, entry)
                    for entry in node.entries
                    if entry.payload == payload
                )
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        touched: list[_Node] = []
        for node, entry in matches:
            node.entries.remove(entry)
            self._size -= 1
            touched.append(node)
        for node in touched:
            self._condense_tree(node)
        return len(matches)

    def _find_leaf(self, node: _Node, box: Box3D,
                   payload: Hashable) -> _Node | None:
        if node.is_leaf:
            for entry in node.entries:
                if entry.payload == payload and entry.box == box:
                    return node
            return None
        for entry in node.entries:
            if entry.box.intersects(box):
                assert entry.child is not None
                found = self._find_leaf(entry.child, box, payload)
                if found is not None:
                    return found
        return None

    def _condense_tree(self, node: _Node) -> None:
        """Guttman's CondenseTree: prune underfull nodes, reinsert orphans."""
        orphans: list[tuple[_Entry, bool]] = []  # (entry, was_leaf_entry)
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current.entries) < self.min_entries:
                for entry in parent.entries:
                    if entry.child is current:
                        parent.entries.remove(entry)
                        break
                for entry in current.entries:
                    orphans.append((entry, current.is_leaf))
                # Detach so a later condense on this node is a no-op
                # (delete_payload condenses every touched node).
                current.entries = []
                current.parent = None
                current = parent
                continue
            self._refresh_parent_boxes(current)
            current = parent
        # Shrink the root when it has a single internal child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            only = self._root.entries[0].child
            assert only is not None
            only.parent = None
            self._root = only
        if not self._root.entries and not self._root.is_leaf:
            self._root = _Node(is_leaf=True)
        # Reinsert orphaned entries.
        for entry, was_leaf in orphans:
            if was_leaf:
                self._size -= 1  # insert() will add it back
                self.insert(entry.box, entry.payload)
            else:
                assert entry.child is not None
                self._reinsert_subtree(entry.child)

    def _reinsert_subtree(self, subtree: _Node) -> None:
        """Reinsert every leaf entry of a pruned subtree."""
        stack = [subtree]
        while stack:
            current = stack.pop()
            entries = current.entries
            # Detach before reinsertion so later condenses touching any
            # node of the pruned subtree cannot re-orphan these entries.
            current.entries = []
            current.parent = None
            if current.is_leaf:
                for entry in entries:
                    self._size -= 1
                    self.insert(entry.box, entry.payload)
            else:
                stack.extend(e.child for e in entries)  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Box3D, Any]]:
        """Iterate all ``(box, payload)`` leaf entries."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.box, entry.payload
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]

    def content_digest(self) -> str:
        """SHA-256 over the sorted leaf contents.

        Structure-independent: two trees holding the same ``(box,
        payload)`` multiset digest equal even when splits placed the
        entries in different nodes.  Float coordinates go through
        ``repr`` (exact), so this is a byte-level content check the
        flight recorder uses as a replay checkpoint.
        """
        import hashlib

        entries = sorted(
            ((box.min_x, box.min_y, box.min_t,
              box.max_x, box.max_y, box.max_t), repr(payload))
            for box, payload in self.items()
        )
        return hashlib.sha256(repr(entries).encode("utf-8")).hexdigest()

    def check_invariants(self) -> None:
        """Validate structural invariants; raises on violation.

        Checks: covering boxes contain children, fill factors respected
        (except at the root), leaf depth uniform, parent pointers sane,
        and the size counter matches the leaf-entry count.
        """
        leaf_depths: set[int] = set()
        count = 0
        stack: list[tuple[_Node, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if node is not self._root:
                if len(node.entries) < self.min_entries:
                    raise IndexError_(
                        f"underfull non-root node ({len(node.entries)} entries)"
                    )
            if len(node.entries) > self.max_entries:
                raise IndexError_(
                    f"overfull node ({len(node.entries)} entries)"
                )
            if node.is_leaf:
                leaf_depths.add(depth)
                count += len(node.entries)
                continue
            for entry in node.entries:
                child = entry.child
                if child is None:
                    raise IndexError_("internal entry without child")
                if child.parent is not node:
                    raise IndexError_("broken parent pointer")
                if not entry.box.contains(child.bounding_box()):
                    raise IndexError_("covering box does not contain child")
                stack.append((child, depth + 1))
        if len(leaf_depths) > 1:
            raise IndexError_(f"leaves at different depths: {leaf_depths}")
        if count != self._size:
            raise IndexError_(
                f"size counter {self._size} != leaf entries {count}"
            )

__all__ = [
    "RTree",
    "SearchStats",
]
