"""The time-space index the DBMS maintains (paper §4.2).

"For each position attribute of an object class we establish a
3-dimensional space consisting of the 2-dimensional geographic area of
interest, and of a time span T. ... The index is updated whenever a
position-update is received from a moving object o: ... the id of o is
removed from the 3-dimensional rectangles of the index that intersect
[the old o-plane] p1, and it is inserted in the 3-dimensional
rectangles that intersect [the new o-plane] p2."

:class:`TimeSpaceIndex` realises this on top of the R-tree: each
object's current o-plane is decomposed into slab boxes
(:meth:`~repro.index.oplane.OPlane.boxes`) inserted under the object's
id; a position update swaps the old boxes for new ones; a query at time
``t0`` retrieves the candidate ids whose slab boxes intersect the query
region's footprint at ``t0``.  Refinement to exact may/must answers
happens above, in the DBMS query processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IndexError_
from repro.geometry.bbox import Box3D, Rect2D
from repro.index.oplane import OPlane
from repro.index.rtree import RTree, SearchStats
from repro.obs.registry import get_registry
from repro.trace.events import INDEX_INSERT, INDEX_REMOVE, INDEX_REPLACE
from repro.trace.recorder import get_recorder


@dataclass(frozen=True, slots=True)
class IndexMaintenanceStats:
    """Counts of index work done for one position update."""

    boxes_removed: int
    boxes_inserted: int


class TimeSpaceIndex:
    """3-D index of o-planes, keyed by object id."""

    def __init__(self, slab_minutes: float = 5.0,
                 max_entries: int = 8, min_entries: int = 3) -> None:
        if slab_minutes <= 0:
            raise IndexError_(f"slab_minutes must be positive, got {slab_minutes}")
        self.slab_minutes = slab_minutes
        self._tree = RTree(max_entries=max_entries, min_entries=min_entries)
        self._planes: dict[str, OPlane] = {}
        self._boxes: dict[str, list[Box3D]] = {}

    def __len__(self) -> int:
        """Number of indexed objects."""
        return len(self._planes)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._planes

    @property
    def tree(self) -> RTree:
        """The underlying R-tree (read-only use by benchmarks)."""
        return self._tree

    def plane_of(self, object_id: str) -> OPlane:
        """The currently indexed o-plane of an object."""
        try:
            return self._planes[object_id]
        except KeyError:
            raise IndexError_(f"object {object_id!r} is not indexed") from None

    @classmethod
    def bulk_build(cls, planes: dict[str, OPlane],
                   slab_minutes: float = 5.0,
                   max_entries: int = 8, min_entries: int = 3) -> "TimeSpaceIndex":
        """Build an index over many o-planes at once (STR packing).

        The cold-start path (snapshot load, index rebuild): decompose
        every plane into slab boxes and bulk-load the R-tree, which is
        an order of magnitude faster than inserting one plane at a time.
        """
        index = cls(slab_minutes=slab_minutes, max_entries=max_entries,
                    min_entries=min_entries)
        items: list[tuple[Box3D, str]] = []
        for object_id, plane in planes.items():
            boxes = plane.boxes(slab_minutes)
            index._planes[object_id] = plane
            index._boxes[object_id] = boxes
            items.extend((box, object_id) for box in boxes)
        index._tree = RTree.bulk_load(
            items, max_entries=max_entries, min_entries=min_entries
        )
        return index

    def insert(self, object_id: str, plane: OPlane) -> int:
        """Index a new object's o-plane; returns the box count."""
        inserted = self._insert_boxes(object_id, plane)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "index_boxes_inserted_total",
                help="Slab boxes inserted into the time-space index.",
            ).inc(inserted)
            self._publish_size(registry)
        rec = get_recorder()
        if rec.enabled:
            rec.record(INDEX_INSERT, object_id=object_id, boxes=inserted)
        return inserted

    def _insert_boxes(self, object_id: str, plane: OPlane,
                      boxes: list[Box3D] | None = None) -> int:
        """Insert without publishing metrics (replace publishes once)."""
        if object_id in self._planes:
            raise IndexError_(
                f"object {object_id!r} already indexed; use replace()"
            )
        if boxes is None:
            boxes = plane.boxes(self.slab_minutes)
        for box in boxes:
            self._tree.insert(box, object_id)
        self._planes[object_id] = plane
        self._boxes[object_id] = boxes
        return len(boxes)

    def remove(self, object_id: str) -> int:
        """Drop an object from the index; returns removed box count."""
        removed = self._remove_boxes(object_id)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "index_boxes_removed_total",
                help="Slab boxes removed from the time-space index.",
            ).inc(removed)
            self._publish_size(registry)
        rec = get_recorder()
        if rec.enabled:
            rec.record(INDEX_REMOVE, object_id=object_id, boxes=removed)
        return removed

    def _remove_boxes(self, object_id: str) -> int:
        """Remove without publishing metrics (replace publishes once)."""
        if object_id not in self._planes:
            raise IndexError_(f"object {object_id!r} is not indexed")
        boxes = self._boxes.pop(object_id)
        del self._planes[object_id]
        removed = 0
        for box in boxes:
            if self._tree.delete(box, object_id):
                removed += 1
        if removed != len(boxes):
            raise IndexError_(
                f"index corruption: expected to remove {len(boxes)} boxes "
                f"for {object_id!r}, removed {removed}"
            )
        return removed

    def _publish_size(self, registry) -> None:
        registry.gauge(
            "index_objects", help="Objects currently indexed.",
        ).set(len(self._planes))
        registry.gauge(
            "index_slab_boxes", help="Slab boxes currently stored.",
        ).set(len(self._tree))

    def replace(self, object_id: str, plane: OPlane,
                force: bool = False) -> IndexMaintenanceStats:
        """The §4.2 update step: swap the old o-plane for the new one.

        When the new plane decomposes into exactly the slab boxes
        already stored (an update that did not move the indexed
        envelope), the R-tree round-trip is skipped entirely: only the
        plane record is refreshed and the stats report zero box work.
        ``force`` disables the skip (maintenance experiments use it to
        measure a full swap).  Either way the size gauges are published
        once per replace, not once per remove plus once per insert.
        """
        if object_id not in self._planes:
            inserted = self.insert(object_id, plane)
            return IndexMaintenanceStats(
                boxes_removed=0, boxes_inserted=inserted
            )
        new_boxes = plane.boxes(self.slab_minutes)
        registry = get_registry()
        if not force and new_boxes == self._boxes[object_id]:
            self._planes[object_id] = plane
            if registry.enabled:
                registry.counter(
                    "index_replace_skipped_total",
                    help="Replaces skipped because slab boxes were unchanged.",
                ).inc()
            rec = get_recorder()
            if rec.enabled:
                rec.record(INDEX_REPLACE, object_id=object_id,
                           removed=0, inserted=0, skipped=True)
            return IndexMaintenanceStats(boxes_removed=0, boxes_inserted=0)
        removed = self._remove_boxes(object_id)
        inserted = self._insert_boxes(object_id, plane, boxes=new_boxes)
        if registry.enabled:
            registry.counter(
                "index_boxes_removed_total",
                help="Slab boxes removed from the time-space index.",
            ).inc(removed)
            registry.counter(
                "index_boxes_inserted_total",
                help="Slab boxes inserted into the time-space index.",
            ).inc(inserted)
            self._publish_size(registry)
        rec = get_recorder()
        if rec.enabled:
            rec.record(INDEX_REPLACE, object_id=object_id,
                       removed=removed, inserted=inserted, skipped=False)
        return IndexMaintenanceStats(
            boxes_removed=removed, boxes_inserted=inserted
        )

    def content_digest(self) -> str:
        """Digest of the underlying R-tree's content (replay checks)."""
        return self._tree.content_digest()

    def candidates_at(self, region: Rect2D, t: float,
                      stats: SearchStats | None = None) -> set[str]:
        """Object ids whose slab boxes intersect ``region`` at time ``t``.

        This is the sublinear retrieval step: the ids come back as a
        set because an o-plane may contribute several matching boxes.
        Every object that may be in the region at ``t`` is included
        (the decomposition is conservative); some returned objects will
        be filtered out by exact refinement.
        """
        payloads = self._tree.search(
            Box3D.from_rect(region, t, t), stats
        )
        return set(payloads)  # type: ignore[arg-type]

    def candidates_at_many(self, windows: list[tuple[Rect2D, float]],
                           stats: SearchStats | None = None) -> list[set[str]]:
        """Candidate sets for many ``(region, t)`` windows in one traversal.

        Set-equal to ``[self.candidates_at(r, t) for r, t in windows]``
        but answered by a single shared R-tree walk
        (:meth:`RTree.search_many`).
        """
        boxes = [Box3D.from_rect(region, t, t) for region, t in windows]
        found = self._tree.search_many(boxes, stats)
        return [set(payloads) for payloads in found]  # type: ignore[arg-type]

    def object_ids(self) -> list[str]:
        """All indexed object ids."""
        return list(self._planes)

    def total_boxes(self) -> int:
        """Total number of slab boxes stored."""
        return len(self._tree)

__all__ = [
    "IndexMaintenanceStats",
    "TimeSpaceIndex",
]
