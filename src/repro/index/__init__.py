"""Indexing of position attributes in 3-D time-space (paper §4).

"The indexing method that we propose avoids [continuous index updates]
by representing the range of current possible positions of a moving
object as a plane in 3-dimensional time-space."  This package builds
that machinery from scratch:

* :mod:`repro.index.rtree` — a classic R-tree (Guttman, quadratic
  split) over 3-D boxes, with instrumentation for the sublinearity
  experiments,
* :mod:`repro.index.oplane` — o-plane construction from a position
  attribute and its policy's deviation bounds, decomposed into
  time-slab boxes,
* :mod:`repro.index.timespace` — the :class:`TimeSpaceIndex` that the
  DBMS maintains (o-plane swap on each position update, §4.2),
* :mod:`repro.index.classify` — Theorems 5 and 6 as geometric
  predicates,
* :mod:`repro.index.scan` — the linear-scan baseline the experiments
  compare against.
"""

from repro.index.classify import may_be_in, must_be_in
from repro.index.oplane import OPlane
from repro.index.rtree import RTree, SearchStats
from repro.index.scan import LinearScanIndex
from repro.index.timespace import TimeSpaceIndex

__all__ = [
    "RTree",
    "SearchStats",
    "OPlane",
    "TimeSpaceIndex",
    "LinearScanIndex",
    "may_be_in",
    "must_be_in",
]
