"""Linear-scan baseline for range queries.

The strawman §4 argues against: answering a range query by examining
*every* object.  It shares the :class:`TimeSpaceIndex` candidate
interface so the query processor and the benchmarks can swap the two
implementations and compare examined-object counts directly.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.geometry.bbox import Rect2D
from repro.index.oplane import OPlane
from repro.index.rtree import SearchStats


class LinearScanIndex:
    """Stores o-planes but always reports every object as a candidate."""

    def __init__(self) -> None:
        self._planes: dict[str, OPlane] = {}

    def __len__(self) -> int:
        return len(self._planes)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._planes

    def plane_of(self, object_id: str) -> OPlane:
        try:
            return self._planes[object_id]
        except KeyError:
            raise IndexError_(f"object {object_id!r} is not indexed") from None

    def insert(self, object_id: str, plane: OPlane) -> int:
        if object_id in self._planes:
            raise IndexError_(
                f"object {object_id!r} already indexed; use replace()"
            )
        self._planes[object_id] = plane
        return 1

    def remove(self, object_id: str) -> int:
        if object_id not in self._planes:
            raise IndexError_(f"object {object_id!r} is not indexed")
        del self._planes[object_id]
        return 1

    def replace(self, object_id: str, plane: OPlane) -> None:
        self._planes[object_id] = plane

    def candidates_at(self, region: Rect2D, t: float,
                      stats: SearchStats | None = None) -> set[str]:
        """Every stored object is a candidate — the O(n) baseline."""
        if stats is not None:
            stats.nodes_visited += 1
            stats.entries_tested += len(self._planes)
            stats.results = len(self._planes)
        return set(self._planes)

    def object_ids(self) -> list[str]:
        return list(self._planes)

__all__ = [
    "LinearScanIndex",
]
