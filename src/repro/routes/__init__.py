"""Routes and route networks.

The paper assumes "the database stores a set of routes, and at any point
in time each object moves along a unique route from the route database"
(§2).  This package provides:

* :class:`~repro.routes.route.Route` — an identified piecewise-linear
  route with direction semantics,
* :class:`~repro.routes.network.RouteNetwork` — a road network backed by
  a :mod:`networkx` graph from which shortest-path routes are derived,
* generators for grid-city, radial-highway and random networks used by
  the workloads and benchmarks.
"""

from repro.routes.generators import (
    grid_city_network,
    radial_highway_network,
    random_network,
    straight_route,
    winding_route,
)
from repro.routes.network import RouteNetwork
from repro.routes.route import Route, RouteDatabase

__all__ = [
    "Route",
    "RouteDatabase",
    "RouteNetwork",
    "grid_city_network",
    "radial_highway_network",
    "random_network",
    "straight_route",
    "winding_route",
]
