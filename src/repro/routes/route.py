"""Identified routes and the route database.

A :class:`Route` wraps a :class:`~repro.geometry.polyline.Polyline` with
an identifier and the paper's direction convention: the ``P.direction``
sub-attribute is a binary indicator whose two values correspond to the
two endpoints of the route (§2).  Direction 0 travels from the
polyline's first vertex towards its last; direction 1 travels the other
way.  All route-distance arithmetic in the library is then expressed in
*travel coordinates*: distance travelled from the start-of-travel
endpoint, which increases monotonically during a trip regardless of
direction.

:class:`RouteDatabase` is the DBMS-side catalogue of routes; position
attributes reference routes by id (the paper's "pointer to a line
spatial object").
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RouteError
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline


class Route:
    """A named piecewise-linear route with direction-aware queries."""

    __slots__ = ("_route_id", "_polyline", "_name")

    def __init__(self, route_id: str, polyline: Polyline, name: str | None = None) -> None:
        if not route_id:
            raise RouteError("route_id must be a non-empty string")
        self._route_id = route_id
        self._polyline = polyline
        self._name = name or route_id

    @property
    def route_id(self) -> str:
        return self._route_id

    @property
    def name(self) -> str:
        return self._name

    @property
    def polyline(self) -> Polyline:
        return self._polyline

    @property
    def length(self) -> float:
        """Total route length in miles."""
        return self._polyline.length

    def endpoint(self, direction: int) -> Point:
        """The start-of-travel endpoint for ``direction`` (0 or 1)."""
        self._check_direction(direction)
        return self._polyline.start if direction == 0 else self._polyline.end

    def travel_point(self, travel_distance: float, direction: int = 0) -> Point:
        """The point ``travel_distance`` miles into a trip along ``direction``."""
        self._check_direction(direction)
        if direction == 0:
            return self._polyline.point_at(travel_distance)
        return self._polyline.point_at(self._polyline.length - travel_distance)

    def travel_distance_of(self, point: Point, direction: int = 0,
                           tolerance: float = 1e-6) -> float:
        """Travel distance of an on-route ``point`` for ``direction``."""
        self._check_direction(direction)
        arc = self._polyline.arc_length_of(point, tolerance)
        return arc if direction == 0 else self._polyline.length - arc

    def route_distance(self, p1: Point, p2: Point, tolerance: float = 1e-6) -> float:
        """Route-distance between two on-route points (direction-free)."""
        return self._polyline.route_distance(p1, p2, tolerance)

    def interval_polyline(self, from_travel: float, to_travel: float,
                          direction: int = 0) -> Polyline:
        """The route strip between two travel distances, as geometry.

        Used to materialise uncertainty intervals for polygon queries
        and for o-plane box decomposition.
        """
        self._check_direction(direction)
        if direction == 0:
            lo, hi = from_travel, to_travel
        else:
            lo = self._polyline.length - max(from_travel, to_travel)
            hi = self._polyline.length - min(from_travel, to_travel)
        return self._polyline.subline(lo, hi)

    def _check_direction(self, direction: int) -> None:
        if direction not in (0, 1):
            raise RouteError(f"direction must be 0 or 1, got {direction!r}")

    def __repr__(self) -> str:
        return f"Route({self._route_id!r}, length={self.length:.2f})"


class RouteDatabase:
    """The DBMS-side catalogue of routes, keyed by route id."""

    def __init__(self) -> None:
        self._routes: dict[str, Route] = {}

    def add(self, route: Route) -> None:
        """Register ``route``; duplicate ids are an error."""
        if route.route_id in self._routes:
            raise RouteError(f"duplicate route id {route.route_id!r}")
        self._routes[route.route_id] = route

    def get(self, route_id: str) -> Route:
        """Look up a route; unknown ids raise :class:`RouteError`."""
        try:
            return self._routes[route_id]
        except KeyError:
            raise RouteError(f"unknown route id {route_id!r}") from None

    def __contains__(self, route_id: str) -> bool:
        return route_id in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def ids(self) -> list[str]:
        """All registered route ids."""
        return list(self._routes)

__all__ = [
    "Route",
    "RouteDatabase",
]
