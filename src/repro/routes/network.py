"""Road networks backed by a networkx graph.

A :class:`RouteNetwork` is a set of intersections (graph nodes with
planar coordinates) joined by straight road segments (edges weighted by
Euclidean length).  Trip routes are derived as shortest paths between
intersections, giving the winding piecewise-linear routes the paper's
vehicles travel on.
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable

import networkx as nx

from repro.errors import RouteError
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline
from repro.routes.route import Route


class RouteNetwork:
    """A planar road network from which routes are derived."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._route_counter = itertools.count(1)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes carry ``pos=Point``)."""
        return self._graph

    def add_intersection(self, node: Hashable, x: float, y: float) -> None:
        """Add an intersection at planar coordinates ``(x, y)``."""
        self._graph.add_node(node, pos=Point(x, y))

    def add_road(self, a: Hashable, b: Hashable) -> None:
        """Add a straight road between two existing intersections."""
        if a not in self._graph or b not in self._graph:
            raise RouteError(f"both intersections must exist: {a!r}, {b!r}")
        pa: Point = self._graph.nodes[a]["pos"]
        pb: Point = self._graph.nodes[b]["pos"]
        self._graph.add_edge(a, b, weight=pa.distance_to(pb))

    def position_of(self, node: Hashable) -> Point:
        """Planar coordinates of an intersection."""
        try:
            return self._graph.nodes[node]["pos"]
        except KeyError:
            raise RouteError(f"unknown intersection {node!r}") from None

    def num_intersections(self) -> int:
        return self._graph.number_of_nodes()

    def num_roads(self) -> int:
        return self._graph.number_of_edges()

    def shortest_route(self, origin: Hashable, destination: Hashable,
                       route_id: str | None = None) -> Route:
        """The shortest-path route between two intersections.

        Raises :class:`RouteError` when no path exists.
        """
        try:
            nodes = nx.shortest_path(
                self._graph, origin, destination, weight="weight"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RouteError(
                f"no route from {origin!r} to {destination!r}"
            ) from exc
        if len(nodes) < 2:
            raise RouteError("origin and destination must differ")
        points = [self._graph.nodes[n]["pos"] for n in nodes]
        rid = route_id or f"route-{next(self._route_counter)}"
        return Route(rid, Polyline(points), name=f"{origin}->{destination}")

    def random_route(self, rng: random.Random, min_length: float = 0.0,
                     route_id: str | None = None,
                     max_attempts: int = 64) -> Route:
        """A shortest-path route between two random intersections.

        Retries until the route is at least ``min_length`` miles long;
        raises :class:`RouteError` when no such route is found within
        ``max_attempts`` attempts.
        """
        nodes = list(self._graph.nodes)
        if len(nodes) < 2:
            raise RouteError("network needs at least two intersections")
        for _ in range(max_attempts):
            origin, destination = rng.sample(nodes, 2)
            try:
                route = self.shortest_route(origin, destination, route_id)
            except RouteError:
                continue
            if route.length >= min_length:
                return route
        raise RouteError(
            f"could not find a route of length >= {min_length} "
            f"in {max_attempts} attempts"
        )

    def bounding_extent(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all intersections."""
        positions = [self._graph.nodes[n]["pos"] for n in self._graph.nodes]
        if not positions:
            raise RouteError("network has no intersections")
        xs = [p.x for p in positions]
        ys = [p.y for p in positions]
        return min(xs), min(ys), max(xs), max(ys)

__all__ = [
    "RouteNetwork",
]
