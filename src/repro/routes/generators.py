"""Synthetic route and network generators.

The paper's simulations run vehicles over one-hour trips on routes; its
motivating applications are city taxi fleets, highway trucking, and
battlefield tracking.  These generators produce the corresponding
geometry:

* :func:`straight_route` — a single straight highway segment,
* :func:`winding_route` — a randomly winding route (exercises the §5
  argument that per-coordinate dynamic attributes fail on winding
  routes),
* :func:`grid_city_network` — a Manhattan-style grid,
* :func:`radial_highway_network` — spokes and a ring around a hub,
* :func:`random_network` — random planar-ish connected network.
"""

from __future__ import annotations

import math
import random

from repro.errors import RouteError
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline
from repro.routes.network import RouteNetwork
from repro.routes.route import Route


def straight_route(length: float, route_id: str = "highway",
                   origin: tuple[float, float] = (0.0, 0.0),
                   heading_degrees: float = 0.0) -> Route:
    """A straight route of ``length`` miles starting at ``origin``."""
    if length <= 0:
        raise RouteError("route length must be positive")
    theta = math.radians(heading_degrees)
    start = Point(*origin)
    end = Point(
        origin[0] + length * math.cos(theta),
        origin[1] + length * math.sin(theta),
    )
    return Route(route_id, Polyline([start, end]))


def winding_route(length: float, rng: random.Random,
                  route_id: str = "winding",
                  origin: tuple[float, float] = (0.0, 0.0),
                  segment_length: float = 0.5,
                  max_turn_degrees: float = 40.0) -> Route:
    """A randomly winding route of approximately ``length`` miles.

    Built as a random-heading walk with bounded per-segment turns, so
    the route is smooth-ish but decidedly not straight.  The *route
    length* (arc length) is ``length`` up to one segment of slack.
    """
    if length <= 0 or segment_length <= 0:
        raise RouteError("length and segment_length must be positive")
    heading = rng.uniform(0.0, 2.0 * math.pi)
    points = [Point(*origin)]
    travelled = 0.0
    while travelled < length:
        step = min(segment_length, length - travelled)
        heading += math.radians(rng.uniform(-max_turn_degrees, max_turn_degrees))
        last = points[-1]
        points.append(
            Point(
                last.x + step * math.cos(heading),
                last.y + step * math.sin(heading),
            )
        )
        travelled += step
    return Route(route_id, Polyline(points))


def grid_city_network(blocks_x: int = 10, blocks_y: int = 10,
                      block_miles: float = 0.25) -> RouteNetwork:
    """A Manhattan grid of ``blocks_x`` x ``blocks_y`` blocks.

    Intersections are labelled ``(i, j)`` with ``0 <= i <= blocks_x`` and
    ``0 <= j <= blocks_y``; adjacent intersections are joined by roads of
    ``block_miles`` miles.
    """
    if blocks_x < 1 or blocks_y < 1 or block_miles <= 0:
        raise RouteError("grid needs positive block counts and block size")
    network = RouteNetwork()
    for i in range(blocks_x + 1):
        for j in range(blocks_y + 1):
            network.add_intersection((i, j), i * block_miles, j * block_miles)
    for i in range(blocks_x + 1):
        for j in range(blocks_y + 1):
            if i < blocks_x:
                network.add_road((i, j), (i + 1, j))
            if j < blocks_y:
                network.add_road((i, j), (i, j + 1))
    return network


def radial_highway_network(spokes: int = 6, spoke_miles: float = 20.0,
                           ring_fraction: float = 0.5) -> RouteNetwork:
    """Highways radiating from a hub, joined by a ring road.

    ``spokes`` highways leave the hub at equal angles; a ring road
    connects them at ``ring_fraction`` of the spoke length.  This is the
    classic "city with beltway" shape used for trucking scenarios.
    """
    if spokes < 3 or spoke_miles <= 0 or not 0 < ring_fraction < 1:
        raise RouteError("need >= 3 spokes, positive length, 0 < ring_fraction < 1")
    network = RouteNetwork()
    network.add_intersection("hub", 0.0, 0.0)
    for s in range(spokes):
        theta = 2.0 * math.pi * s / spokes
        ring_x = ring_fraction * spoke_miles * math.cos(theta)
        ring_y = ring_fraction * spoke_miles * math.sin(theta)
        tip_x = spoke_miles * math.cos(theta)
        tip_y = spoke_miles * math.sin(theta)
        network.add_intersection(("ring", s), ring_x, ring_y)
        network.add_intersection(("tip", s), tip_x, tip_y)
        network.add_road("hub", ("ring", s))
        network.add_road(("ring", s), ("tip", s))
    for s in range(spokes):
        network.add_road(("ring", s), ("ring", (s + 1) % spokes))
    return network


def random_network(num_intersections: int, extent_miles: float,
                   rng: random.Random,
                   neighbours: int = 3) -> RouteNetwork:
    """A random connected network over a square extent.

    Each intersection is placed uniformly at random and joined to its
    ``neighbours`` nearest neighbours; a spanning chain guarantees
    connectivity.  This models the irregular road webs of battlefield
    or rural scenarios.
    """
    if num_intersections < 2 or extent_miles <= 0 or neighbours < 1:
        raise RouteError("need >= 2 intersections, positive extent, >= 1 neighbour")
    network = RouteNetwork()
    positions: list[tuple[int, Point]] = []
    for n in range(num_intersections):
        point = Point(
            rng.uniform(0.0, extent_miles), rng.uniform(0.0, extent_miles)
        )
        network.add_intersection(n, point.x, point.y)
        positions.append((n, point))
    for n, point in positions:
        by_distance = sorted(
            (other for other in positions if other[0] != n),
            key=lambda item: point.distance_to(item[1]),
        )
        for other, _ in by_distance[:neighbours]:
            network.add_road(n, other)
    # Guarantee connectivity with a chain over a random ordering.
    order = [n for n, _ in positions]
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        network.add_road(a, b)
    return network

__all__ = [
    "grid_city_network",
    "radial_highway_network",
    "random_network",
    "straight_route",
    "winding_route",
]
