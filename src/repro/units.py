"""Unit conventions and conversion helpers.

The library works in a single canonical unit system chosen to match the
paper's worked Example 1:

* **distance** — miles
* **time** — minutes
* **speed** — miles per minute (1 mile/minute = 60 mph)
* **cost** — "deviation-cost units": the cost of one mile of deviation
  sustained for one minute is 1.  The update cost ``C`` is expressed in
  the same units, so ``C = 5`` means one position-update message costs as
  much as a 1-mile deviation lasting five minutes.

All public APIs take and return canonical units.  The helpers below exist
so examples and workload generators can be written in familiar units
(mph, seconds, kilometres) without sprinkling magic constants.
"""

from __future__ import annotations

#: Minutes in one hour.
MINUTES_PER_HOUR = 60.0

#: Seconds in one minute.
SECONDS_PER_MINUTE = 60.0

#: Kilometres in one mile.
KM_PER_MILE = 1.609344

#: Default simulation tick: one second, expressed in minutes.
DEFAULT_TICK_MINUTES = 1.0 / SECONDS_PER_MINUTE


def mph_to_miles_per_minute(mph: float) -> float:
    """Convert miles-per-hour to the canonical miles-per-minute."""
    return mph / MINUTES_PER_HOUR


def miles_per_minute_to_mph(speed: float) -> float:
    """Convert canonical miles-per-minute to miles-per-hour."""
    return speed * MINUTES_PER_HOUR


def seconds_to_minutes(seconds: float) -> float:
    """Convert seconds to canonical minutes."""
    return seconds / SECONDS_PER_MINUTE


def minutes_to_seconds(minutes: float) -> float:
    """Convert canonical minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def hours_to_minutes(hours: float) -> float:
    """Convert hours to canonical minutes."""
    return hours * MINUTES_PER_HOUR


def km_to_miles(km: float) -> float:
    """Convert kilometres to canonical miles."""
    return km / KM_PER_MILE


def miles_to_km(miles: float) -> float:
    """Convert canonical miles to kilometres."""
    return miles * KM_PER_MILE


__all__ = [
    "DEFAULT_TICK_MINUTES",
    "KM_PER_MILE",
    "MINUTES_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "hours_to_minutes",
    "km_to_miles",
    "miles_per_minute_to_mph",
    "miles_to_km",
    "minutes_to_seconds",
    "mph_to_miles_per_minute",
    "seconds_to_minutes",
]
