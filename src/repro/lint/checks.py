"""The initial rule pack: this repo's real failure modes, as AST checks.

Code families (see :mod:`repro.lint.rules` for scoping):

* ``RPR1xx`` **determinism** — the parallel sweep (PR 2) and batched
  query engine (PR 3) promise byte-identical output; unseeded RNG,
  wall-clock reads, and set-iteration order inside ``sim/``, ``exec/``
  or ``dbms/batch.py`` silently break that promise.
* ``RPR2xx`` **exec safety** — fork/pickle hazards around the
  ``ProcessPoolExecutor`` sweep path.
* ``RPR3xx`` **numeric hygiene** — float ``==`` and mutable defaults
  corrupt the §3 cost algebra in ways tests rarely catch; ``vec/``
  kernels (PR 7) additionally ban per-element loops over arrays and
  narrower-than-float64 dtypes, which break the byte-identity promise.
* ``RPR4xx`` **API consistency** — ``__all__`` drift.
* ``RPR5xx`` **observability discipline** — span pairing and registry
  construction rules from PR 1, plus flight-recorder event discipline
  (DBMS/index modules serialize events through ``repro.trace``, never
  ad hoc).
* ``RPR9xx`` **suppression hygiene** — enforced by the engine itself
  (registered here with ``check=None`` so they are documented and
  selectable like any other rule).

Checkers are pure functions from a :class:`ModuleContext` to an
iterator of findings; they never read the filesystem.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.lint.rules import (
    ModuleContext,
    Rule,
    register,
    register_rule,
)

#: Module-level ``random`` functions that draw from (or reseed) the
#: shared global generator.
_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "seed",
    "lognormvariate", "paretovariate", "vonmisesvariate",
    "weibullvariate",
})

#: Wall-clock and entropy reads banned from deterministic paths
#: (``time.perf_counter`` stays legal: it feeds metrics, not results).
_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin, from the module's imports."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    mapping[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mapping[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _resolve(dotted: str, imports: dict[str, str]) -> str:
    """Rewrite ``dotted``'s head through the module's import aliases."""
    head, _, rest = dotted.partition(".")
    if head in imports:
        origin = imports[head]
        return f"{origin}.{rest}" if rest else origin
    return dotted


def _matches(resolved: str, banned: str) -> bool:
    return resolved == banned or resolved.endswith("." + banned)


def _calls(ctx: ModuleContext) -> Iterator[tuple[ast.Call, str]]:
    """Every call in the module with its import-resolved dotted name."""
    imports = _import_map(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                yield node, _resolve(dotted, imports)


@register(
    "RPR101", "unseeded-rng", SEVERITY_ERROR, "deterministic",
    "no module-level random.* calls or unseeded random.Random() in "
    "deterministic paths (sim/, exec/, dbms/batch.py)",
)
def check_unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    for call, resolved in _calls(ctx):
        if resolved == "random.Random":
            if not call.args:
                yield ctx.finding(
                    call, "RPR101",
                    "unseeded random.Random(); pass an explicit seed so "
                    "runs are reproducible",
                )
            continue
        head, _, tail = resolved.partition(".")
        if head == "random" and tail in _RANDOM_FNS:
            yield ctx.finding(
                call, "RPR101",
                f"call to shared-state random.{tail}() in a deterministic "
                f"path; draw from a seeded random.Random instance instead",
            )


@register(
    "RPR102", "wall-clock-read", SEVERITY_ERROR, "deterministic",
    "no time.time()/datetime.now()/os.urandom()/uuid4() in "
    "deterministic paths (perf_counter for metrics is fine)",
)
def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    for call, resolved in _calls(ctx):
        for banned in _WALL_CLOCK:
            if _matches(resolved, banned):
                yield ctx.finding(
                    call, "RPR102",
                    f"wall-clock/entropy read {banned}() in a deterministic "
                    f"path; results must be a pure function of the inputs",
                )
                break


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        return dotted in ("set", "frozenset")
    return False


@register(
    "RPR103", "unordered-set-iteration", SEVERITY_ERROR, "deterministic",
    "no iterating a set expression into ordered output in deterministic "
    "paths; wrap in sorted()",
)
def check_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    message = ("iteration order of a set is not deterministic across "
               "runs; wrap the set in sorted() before building ordered "
               "output")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield ctx.finding(node.iter, "RPR103", message)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield ctx.finding(gen.iter, "RPR103", message)
        elif (isinstance(node, ast.Call)
                and _dotted(node.func) in ("list", "tuple")
                and node.args and _is_set_expr(node.args[0])):
            yield ctx.finding(node, "RPR103", message)


def _dict_view(node: ast.expr) -> str | None:
    """Receiver dotted name when ``node`` is ``X.values/items/keys()``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "items", "keys")
            and not node.args and not node.keywords):
        return _dotted(node.func.value)
    return None


def _shard_keyed(name: str | None) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return "shard" in lowered or "owner" in lowered


def _builds_ordered_output(loop: ast.For) -> bool:
    """Does the loop body append/extend/insert or yield (ordered sinks)?"""
    for node in ast.walk(loop):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert")):
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@register(
    "RPR104", "shard-merge-order", SEVERITY_ERROR, "shard",
    "no iterating shard-keyed mapping views into ordered output in "
    "shard merge paths; wrap in sorted()",
)
def check_shard_merge_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    message = ("shard-keyed mapping iteration follows insertion/arrival "
               "order, which differs across shard merges; wrap the view "
               "in sorted() before building ordered output")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            if (_shard_keyed(_dict_view(node.iter))
                    and _builds_ordered_output(node)):
                yield ctx.finding(node.iter, "RPR104", message)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _shard_keyed(_dict_view(gen.iter)):
                    yield ctx.finding(gen.iter, "RPR104", message)
        elif (isinstance(node, ast.Call)
                and _dotted(node.func) in ("list", "tuple")
                and node.args and _shard_keyed(_dict_view(node.args[0]))):
            yield ctx.finding(node, "RPR104", message)


def _closure_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside other functions (unpicklable)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is not node and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(inner.name)
    return frozenset(names)


@register(
    "RPR201", "pool-unpicklable-task", SEVERITY_ERROR, "everywhere",
    "no lambdas or closure-local functions submitted to a process "
    "pool/executor (they do not pickle)",
)
def check_pool_tasks(ctx: ModuleContext) -> Iterator[Finding]:
    closures = _closure_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")):
            continue
        receiver = (_dotted(node.func.value) or "").lower()
        if "pool" not in receiver and "executor" not in receiver:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                yield ctx.finding(
                    arg, "RPR201",
                    f"lambda passed to .{node.func.attr}() on a process "
                    f"pool; lambdas do not pickle — use a module-level "
                    f"function",
                )
            elif isinstance(arg, ast.Name) and arg.id in closures:
                yield ctx.finding(
                    arg, "RPR201",
                    f"closure-local function {arg.id!r} passed to "
                    f".{node.func.attr}() on a process pool; nested "
                    f"functions do not pickle — hoist it to module level",
                )


@register(
    "RPR202", "worker-global-mutation", SEVERITY_ERROR, "exec",
    "inside exec/, only pool-initializer functions (_init*) may rebind "
    "module globals; worker tasks must not",
)
def check_worker_globals(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith(("_init", "init")):
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                yield ctx.finding(
                    stmt, "RPR202",
                    f"function {node.name!r} rebinds module globals "
                    f"({', '.join(stmt.names)}); under fork, worker-side "
                    f"mutation diverges from the parent — only pool "
                    f"initializers (_init*) may do this",
                )


def _is_float_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_operand(node.operand)
    return isinstance(node, ast.Call) and _dotted(node.func) == "float"


@register(
    "RPR301", "float-equality", SEVERITY_ERROR, "library",
    "no bare ==/!= against float literals or float() casts outside "
    "byte-identical assertion helpers",
)
def check_float_equality(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if (_is_float_operand(operands[i])
                    or _is_float_operand(operands[i + 1])):
                yield ctx.finding(
                    node, "RPR301",
                    "bare float equality; use math.isclose / an explicit "
                    "tolerance, or suppress with a reason if the "
                    "comparison is genuinely byte-identical",
                )
                break


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(node, ast.Call)
            and _dotted(node.func) in ("list", "dict", "set"))


@register(
    "RPR302", "mutable-default-arg", SEVERITY_ERROR, "everywhere",
    "no mutable default arguments ([]/{}/set()/list()/dict())",
)
def check_mutable_defaults(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                yield ctx.finding(
                    default, "RPR302",
                    f"mutable default argument in {name!r}; defaults are "
                    f"evaluated once and shared across calls — default to "
                    f"None and construct inside",
                )


#: Attribute/method names that stream a NumPy array element by element.
_NUMPY_ELEMENT_ITERS = frozenset({"flat", "tolist", "ravel", "flatten"})

#: dtype spellings narrower than float64; the vec kernels promise
#: float64 parity with the scalar engines, so these are always wrong.
_NARROW_FLOAT_DTYPES = frozenset({
    "float16", "float32", "half", "single", "longdouble", "float128",
    "f2", "f4", "e",
})


def _iterates_numpy_elements(iter_node: ast.expr,
                             imports: dict[str, str]) -> bool:
    """Whether a loop's iterable walks a NumPy array per element."""
    if isinstance(iter_node, ast.Attribute):
        # for x in arr.flat: ...
        return iter_node.attr in _NUMPY_ELEMENT_ITERS
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _NUMPY_ELEMENT_ITERS):
            # for x in arr.tolist() / arr.ravel() / arr.flatten(): ...
            return True
        dotted = _dotted(func)
        if dotted is not None:
            resolved = _resolve(dotted, imports)
            # for x in np.nditer(arr) / np.ndenumerate(arr): ...
            return resolved.startswith("numpy.")
    return False


def _narrow_dtype_spelling(node: ast.expr,
                           imports: dict[str, str]) -> str | None:
    """The narrow-float dtype ``node`` names, if it names one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        spelling = node.value.lstrip("<>=")
        return node.value if spelling in _NARROW_FLOAT_DTYPES else None
    dotted = _dotted(node)
    if dotted is None:
        return None
    resolved = _resolve(dotted, imports)
    tail = resolved.rsplit(".", 1)[-1]
    return dotted if tail in _NARROW_FLOAT_DTYPES else None


@register(
    "RPR304", "vec-kernel-hygiene", SEVERITY_ERROR, "vec",
    "vec/ kernels stay array-at-a-time in float64: no per-element "
    "Python loops over NumPy arrays, no narrower-than-float64 dtypes",
)
def check_vec_kernel_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    imports = _import_map(ctx.tree)
    for node in ast.walk(ctx.tree):
        iter_nodes: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_nodes.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iter_nodes.extend(gen.iter for gen in node.generators)
        for iter_node in iter_nodes:
            if _iterates_numpy_elements(iter_node, imports):
                yield ctx.finding(
                    node, "RPR304",
                    "per-element Python loop over a NumPy array defeats "
                    "the kernel's vectorization; use an array expression "
                    "(or np.nonzero + indexed assignment for scatters)",
                )
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg != "dtype":
                    continue
                spelling = _narrow_dtype_spelling(keyword.value, imports)
                if spelling is not None:
                    yield ctx.finding(
                        keyword.value, "RPR304",
                        f"dtype {spelling!r} is narrower than float64; vec "
                        f"kernels promise byte-identical float64 results, "
                        f"so narrow floats silently break parity",
                    )


def _module_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    """The module-level ``__all__`` list, if statically resolvable."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts):
            return stmt, [e.value for e in value.elts
                          if isinstance(e, ast.Constant)]
        return stmt, []  # present but dynamic: declared, not checkable
    return None


def _bindings(body: list[ast.stmt], into: set[str]) -> bool:
    """Collect statically visible module-level names; False on ``*``."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            into.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        into.add(node.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                into.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                into.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    return False
                into.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            if not _bindings(stmt.body, into):
                return False
            if not _bindings(stmt.orelse, into):
                return False
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody,
                          *[h.body for h in stmt.handlers]):
                if not _bindings(block, into):
                    return False
        elif isinstance(stmt, (ast.For, ast.While, ast.With)):
            if not _bindings(stmt.body, into):
                return False
    return True


@register(
    "RPR401", "all-does-not-resolve", SEVERITY_ERROR, "everywhere",
    "every name listed in __all__ must resolve to a module-level "
    "binding",
)
def check_all_resolves(ctx: ModuleContext) -> Iterator[Finding]:
    declared = _module_all(ctx.tree)
    if declared is None:
        return
    stmt, names = declared
    bound: set[str] = set()
    if not _bindings(ctx.tree.body, bound):
        return  # star import: resolution is not statically decidable
    for name in names:
        if name not in bound:
            yield ctx.finding(
                stmt, "RPR401",
                f"__all__ lists {name!r} but the module defines no such "
                f"name",
            )


@register(
    "RPR402", "missing-all", SEVERITY_WARNING, "library",
    "public library modules must declare __all__ (their import surface)",
)
def check_missing_all(ctx: ModuleContext) -> Iterator[Finding]:
    stem = ctx.relpath.rsplit("/", 1)[-1].removesuffix(".py")
    if stem.startswith("_") and stem != "__init__":
        return
    if _module_all(ctx.tree) is None:
        yield ctx.finding(
            ctx.tree, "RPR402",
            "public module defines no __all__; declare its import "
            "surface explicitly",
        )


@register(
    "RPR501", "span-not-context-managed", SEVERITY_ERROR,
    "library-not-obs",
    "span(...) results must be entered via `with` at the call site so "
    "enter/exit always pair (obs/ itself implements the machinery)",
)
def check_span_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    managed: set[int] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                managed.add(id(item.context_expr))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        if dotted != "span" and not dotted.endswith(".span"):
            continue
        if id(node) not in managed:
            yield ctx.finding(
                node, "RPR501",
                "span() call is not the context expression of a `with`; "
                "detached spans can exit out of order (or never)",
            )


@register(
    "RPR502", "direct-registry-construction", SEVERITY_ERROR,
    "library-not-obs",
    "no direct MetricsRegistry() construction outside obs/ (use "
    "use_registry()/enable_metrics())",
)
def check_registry_construction(ctx: ModuleContext) -> Iterator[Finding]:
    for call, resolved in _calls(ctx):
        if resolved.rsplit(".", 1)[-1] == "MetricsRegistry":
            yield ctx.finding(
                call, "RPR502",
                "MetricsRegistry constructed directly; outside obs/ go "
                "through use_registry()/enable_metrics() so the active "
                "registry stays process-coherent",
            )


@register(
    "RPR503", "ad-hoc-event-serialization", SEVERITY_ERROR, "dbms-index",
    "DBMS/index event emission must go through the flight recorder "
    "API (no ad-hoc json.dumps in dbms/ or index/ modules)",
)
def check_adhoc_event_writes(ctx: ModuleContext) -> Iterator[Finding]:
    for call, resolved in _calls(ctx):
        if _matches(resolved, "json.dumps"):
            yield ctx.finding(
                call, "RPR503",
                "json.dumps in a dbms/index module; DBMS-visible events "
                "are serialized by the flight recorder — record them "
                "through repro.trace.get_recorder() so traces stay "
                "schema-versioned and replayable",
            )


_OBS_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
)


@register(
    "RPR504", "non-monotonic-interval-clock", SEVERITY_ERROR, "obs",
    "windowed/live obs code must use time.monotonic() (or the injected "
    "sim clock) for interval math, never time.time(): a wall-clock "
    "step would corrupt every ring-buffer window",
)
def check_obs_interval_clock(ctx: ModuleContext) -> Iterator[Finding]:
    for call, resolved in _calls(ctx):
        for banned in _OBS_WALL_CLOCK:
            if _matches(resolved, banned):
                yield ctx.finding(
                    call, "RPR504",
                    f"{banned}() in obs code; interval math must use "
                    f"time.monotonic()/time.perf_counter() or the "
                    f"injected sim clock — wall clocks step under "
                    f"NTP/suspend and silently corrupt windows",
                )
                break


register_rule(Rule(
    code="RPR000", name="syntax-error", severity=SEVERITY_ERROR,
    scope="everywhere", check=None,
    description="the module must parse; a file that does not parse "
                "cannot be checked at all",
))

# RPR6xx: whole-program flow rules.  Their checkers are not per-file
# AST passes — they run over the package call graph in
# repro.lint.flow (enabled with `repro lint --flow`) — so they are
# registered with check=None, like the engine-enforced RPR9xx family,
# to appear in --list-rules, selection, and noqa validation.
register_rule(Rule(
    code="RPR601", name="interprocedural-rng-taint",
    severity=SEVERITY_ERROR, scope="everywhere", check=None,
    description="no shared-state/unseeded RNG reachable (through any "
                "number of call hops) from the digest/trace/"
                "ordered-output sink modules (flow pass)",
))
register_rule(Rule(
    code="RPR602", name="interprocedural-clock-taint",
    severity=SEVERITY_ERROR, scope="everywhere", check=None,
    description="no wall-clock/entropy read reachable from the "
                "digest/trace/ordered-output sink modules (flow pass)",
))
register_rule(Rule(
    code="RPR603", name="interprocedural-unordered-taint",
    severity=SEVERITY_ERROR, scope="everywhere", check=None,
    description="no unsorted set iteration feeding return values "
                "reachable from ordered-output sink modules (flow "
                "pass)",
))
register_rule(Rule(
    code="RPR604", name="pool-unpicklable-flow",
    severity=SEVERITY_ERROR, scope="everywhere", check=None,
    description="no lambda/closure/unpicklable bound method flowing "
                "into ProcessPoolExecutor.submit/map in exec/ or "
                "shard/, including via task-function parameters "
                "(flow pass)",
))
register_rule(Rule(
    code="RPR605", name="schema-contract",
    severity=SEVERITY_ERROR, scope="everywhere", check=None,
    description="every produced repro-*/N schema version must be "
                "accepted by its consumers and documented in "
                "DESIGN.md's schema registry (flow pass)",
))

# Suppression hygiene is enforced by the engine while it matches
# "repro: noqa" directives; the rules are registered here so they
# appear in --list-rules output, docs, and selection.
register_rule(Rule(
    code="RPR901", name="unknown-noqa-code", severity=SEVERITY_ERROR,
    scope="everywhere", check=None,
    description="# repro: noqa[CODE] must reference registered rule "
                "codes",
))
register_rule(Rule(
    code="RPR902", name="noqa-without-reason", severity=SEVERITY_ERROR,
    scope="everywhere", check=None,
    description="# repro: noqa[CODE] must carry a reason string",
))


__all__ = [
    "check_adhoc_event_writes",
    "check_all_resolves",
    "check_float_equality",
    "check_missing_all",
    "check_mutable_defaults",
    "check_pool_tasks",
    "check_registry_construction",
    "check_set_iteration",
    "check_span_pairing",
    "check_unseeded_rng",
    "check_vec_kernel_hygiene",
    "check_wall_clock",
    "check_worker_globals",
]
