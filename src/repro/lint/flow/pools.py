"""Interprocedural picklability inference for pool tasks (``RPR604``).

The per-file rule ``RPR201`` catches a lambda or closure handed
*directly* to ``pool.submit``/``pool.map``.  It cannot catch the same
hazard one hop away: an ``exec/``/``shard/`` helper that forwards a
``task_fn`` parameter into the pool, called from another module with a
lambda — the crash only happens at fork time, on a parallel run, on a
multi-core box.  This pass closes that hole:

* every ``submit``/``map`` call on a pool/executor receiver inside
  ``exec/`` or ``shard/`` is located,
* the callable argument is resolved: module-level functions (local or
  imported, re-exports followed) are fine; names bound to lambdas are
  flagged; ``functools.partial`` is unwrapped,
* a callable that is a *parameter* of the enclosing function is traced
  to every resolved call site, and the argument expression each caller
  actually passes is classified there — so the finding lands on the
  caller's lambda, where the fix belongs,
* bound methods (``self.method`` / ``obj.method`` with a resolvable
  class) are flagged when the class visibly stores unpicklable state:
  an attribute assigned from ``threading.Lock()``, ``open()``,
  ``socket.socket()`` and friends.

Everything unresolvable is silently trusted — the pass never invents
an edge, so it reports only hazards it can prove from the source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.flow.graph import (
    FunctionInfo,
    PackageGraph,
    dotted_name,
    resolve_alias,
)
from repro.lint.rules import get_rule

CODE = "RPR604"

#: Modules whose pool submissions are checked (package-relative).
POOL_PKGPATHS: tuple[str, ...] = ("exec/", "shard/")

#: Constructors whose results do not pickle; a class storing one on
#: ``self`` makes its bound methods unsubmittable to a fork pool.
_UNPICKLABLE_CTORS = (
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "open",
    "io.open",
    "io.StringIO",
    "io.BytesIO",
    "socket.socket",
    "sqlite3.connect",
    "subprocess.Popen",
)


def _pool_task_calls(info: FunctionInfo) -> Iterator[ast.Call]:
    """``submit``/``map`` calls on pool/executor receivers in a function."""
    for node in ast.walk(info.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args):
            continue
        receiver = (dotted_name(node.func.value) or "").lower()
        if "pool" in receiver or "executor" in receiver:
            yield node


def _nested_def_names(info: FunctionInfo) -> frozenset[str]:
    names = set()
    for node in ast.walk(info.node):
        if node is not info.node and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return frozenset(names)


def _lambda_bound_names(info: FunctionInfo) -> frozenset[str]:
    names = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _unpicklable_state(graph: PackageGraph,
                       class_qual: str) -> str | None:
    """The banned constructor a class stores on ``self``, if any."""
    entry = graph.classes.get(class_qual)
    if entry is None:
        return None
    module, node = entry
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Assign)
                and isinstance(sub.value, ast.Call)):
            continue
        stores_self = any(
            isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
            and t.value.id == "self" for t in sub.targets)
        if not stores_self:
            continue
        dotted = dotted_name(sub.value.func)
        if dotted is None:
            continue
        resolved = resolve_alias(dotted, module.imports)
        for banned in _UNPICKLABLE_CTORS:
            if resolved == banned:
                return banned
    return None


def _local_instance_class(info: FunctionInfo, graph: PackageGraph,
                          name: str) -> str | None:
    """Class qualname when ``name = ClassName(...)`` binds in ``info``."""
    for node in ast.walk(info.node):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in node.targets):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None:
            continue
        resolved = resolve_alias(dotted, info.module.imports)
        for candidate in (resolved, f"{info.module.name}.{dotted}"):
            if candidate in graph.classes:
                return candidate
    return None


def _unwrap_partial(expr: ast.expr,
                    imports: dict[str, str]) -> ast.expr:
    """``functools.partial(f, ...)`` -> ``f`` (recursively)."""
    while isinstance(expr, ast.Call):
        dotted = dotted_name(expr.func)
        if dotted is None:
            break
        resolved = resolve_alias(dotted, imports)
        if resolved in ("functools.partial", "partial") and expr.args:
            expr = expr.args[0]
        else:
            break
    return expr


def _finding(info: FunctionInfo, node: ast.AST, message: str) -> Finding:
    rule = get_rule(CODE)
    return Finding(
        path=info.module.relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=CODE,
        severity=rule.severity,
        message=message,
    )


def _classify_argument(graph: PackageGraph, caller: FunctionInfo,
                       expr: ast.expr, pool_fn: str) -> Finding | None:
    """A finding when ``expr`` (passed by ``caller``) cannot pickle."""
    expr = _unwrap_partial(expr, caller.module.imports)
    where = (f"flows into {pool_fn}() on a process pool via a task "
             f"parameter")
    if isinstance(expr, ast.Lambda):
        return _finding(
            caller, expr,
            f"lambda passed by {_short(graph, caller.qualname)}() "
            f"{where}; lambdas do not pickle — use a module-level "
            f"function")
    if isinstance(expr, ast.Name):
        if expr.id in _nested_def_names(caller) \
                or expr.id in _lambda_bound_names(caller):
            return _finding(
                caller, expr,
                f"closure-local callable {expr.id!r} passed by "
                f"{_short(graph, caller.qualname)}() {where}; nested "
                f"functions do not pickle — hoist it to module level")
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        class_qual = None
        if expr.value.id == "self" and caller.class_name is not None:
            class_qual = f"{caller.module.name}.{caller.class_name}"
        else:
            class_qual = _local_instance_class(caller, graph, expr.value.id)
        if class_qual is not None:
            banned = _unpicklable_state(graph, class_qual)
            if banned is not None:
                return _finding(
                    caller, expr,
                    f"bound method {_short(graph, class_qual)}."
                    f"{expr.attr} {where}; the instance holds "
                    f"{banned}() state, which does not pickle")
    return None


def _short(graph: PackageGraph, qualname: str) -> str:
    prefix = graph.package + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) \
        else qualname


def check_pool_picklability(graph: PackageGraph,
                            pool_paths: tuple[str, ...] = POOL_PKGPATHS
                            ) -> list[Finding]:
    """RPR604: unpicklable callables reaching pool submission points."""
    findings: list[Finding] = []
    for info in graph.functions_in(pool_paths):
        params = info.param_names()
        for call in _pool_task_calls(info):
            task = _unwrap_partial(call.args[0], info.module.imports)
            pool_fn = call.func.attr \
                if isinstance(call.func, ast.Attribute) else "submit"
            if isinstance(task, ast.Name) and task.id in params:
                # The task comes from a caller: classify what each
                # resolved caller actually passes, at the caller.
                index = params.index(task.id)
                for site in sorted(graph.callers.get(info.qualname, []),
                                   key=lambda s: (s.path, s.line, s.col)):
                    caller = graph.functions.get(site.caller)
                    if caller is None:
                        continue
                    arg = _argument_at(site.node, index, task.id)
                    if arg is None:
                        continue
                    finding = _classify_argument(graph, caller, arg,
                                                 pool_fn)
                    if finding is not None:
                        findings.append(finding)
            elif isinstance(task, (ast.Lambda,)):
                # Direct lambda at the submit site: RPR201 (per-file)
                # already reports it; the flow pass stays silent.
                continue
            else:
                finding = _classify_argument(graph, info, task, pool_fn)
                if finding is not None:
                    findings.append(finding)
    deduped: list[Finding] = []
    seen: set[Finding] = set()
    for finding in sorted(findings):
        if finding not in seen:
            seen.add(finding)
            deduped.append(finding)
    return deduped


def _argument_at(call: ast.Call, index: int,
                 name: str) -> ast.expr | None:
    """The caller-side expression for positional ``index`` / kw ``name``."""
    if index < len(call.args):
        arg = call.args[index]
        return None if isinstance(arg, ast.Starred) else arg
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


__all__ = [
    "CODE",
    "POOL_PKGPATHS",
    "check_pool_picklability",
]
