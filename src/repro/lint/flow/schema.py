"""The schema-contract registry (``RPR605``).

Every persisted document in this repo carries a ``repro-<name>/<N>``
schema tag: traces, shard plans, SLO specs and verdicts, bench
results, collector JSONL, lint reports and baselines.  Producers write
the tag; consumers refuse documents whose tag they do not recognise.
That contract is invisible to per-file linting — the producer and the
consumer are different modules, and the documented version lives in
``DESIGN.md``.

This pass extracts every schema string literal in the package
(including ``f"repro-bench/{SCHEMA_VERSION}"``-style literals whose
placeholder is a module-level constant), follows the constants they
are bound to across modules and re-exports, and classifies each use
site:

* **producer** — the tag is the value of a ``"schema"`` key in a dict
  literal, or a ``schema=`` keyword argument,
* **consumer** — the tag appears in a comparison (``==``, ``!=``,
  ``in`` — including membership in a tuple of accepted versions such
  as ``READABLE_SCHEMAS``).

Two contracts are then checked:

1. every version a producer emits must be accepted by at least one
   consumer of the same family (families nobody consumes — pure
   output documents — are exempt),
2. every family/version referenced anywhere in the package must be
   documented in ``DESIGN.md``'s schema registry.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.findings import Finding
from repro.lint.flow.graph import (
    ModuleInfo,
    PackageGraph,
    dotted_name,
    resolve_alias,
)
from repro.lint.rules import get_rule

CODE = "RPR605"

#: A complete schema tag: family name plus integer version.
SCHEMA_RE = re.compile(r"^(repro-[a-z0-9][a-z0-9-]*)/([0-9]+)$")

#: Loose form used to scan DESIGN.md prose for documented tags.
SCHEMA_SCAN_RE = re.compile(r"(repro-[a-z0-9][a-z0-9-]*)/([0-9]+)")

ROLE_PRODUCER = "producer"
ROLE_CONSUMER = "consumer"
ROLE_CONSTANT = "constant"
ROLE_MENTION = "mention"


@dataclass(frozen=True, slots=True)
class SchemaOccurrence:
    """One appearance of a schema tag at a classified site."""

    family: str
    version: int
    path: str
    line: int
    col: int
    role: str


@dataclass(slots=True)
class SchemaRegistry:
    """Everything the extraction pass learned about schema tags."""

    occurrences: list[SchemaOccurrence] = field(default_factory=list)
    #: constant qualname -> the schema tags it (or its tuple) carries
    constants: dict[str, frozenset[tuple[str, int]]] = \
        field(default_factory=dict)

    def by_role(self, role: str) -> dict[str, set[int]]:
        out: dict[str, set[int]] = {}
        for occ in self.occurrences:
            if occ.role == role:
                out.setdefault(occ.family, set()).add(occ.version)
        return out

    def referenced(self) -> dict[tuple[str, int], SchemaOccurrence]:
        """First (sorted) occurrence per referenced family/version."""
        first: dict[tuple[str, int], SchemaOccurrence] = {}
        for occ in sorted(self.occurrences,
                          key=lambda o: (o.path, o.line, o.col)):
            first.setdefault((occ.family, occ.version), occ)
        return first

    def first_site(self, family: str, version: int,
                   role: str) -> SchemaOccurrence | None:
        best: SchemaOccurrence | None = None
        for occ in self.occurrences:
            if (occ.family, occ.version, occ.role) != \
                    (family, version, role):
                continue
            if best is None or (occ.path, occ.line, occ.col) < \
                    (best.path, best.line, best.col):
                best = occ
        return best


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _int_constants(tree: ast.Module) -> dict[str, int]:
    """Module-level ``NAME = <int>`` bindings (for f-string versions)."""
    out: dict[str, int] = {}
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.value.value
    return out


def _literal_tag(node: ast.expr,
                 int_constants: dict[str, int]) -> tuple[str, int] | None:
    """The (family, version) a literal expression spells, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        match = SCHEMA_RE.match(node.value)
        if match is not None:
            return match.group(1), int(match.group(2))
        return None
    if isinstance(node, ast.JoinedStr):
        text = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                text += value.value
            elif isinstance(value, ast.FormattedValue) and \
                    isinstance(value.value, ast.Name) and \
                    value.value.id in int_constants:
                text += str(int_constants[value.value.id])
            else:
                return None
        match = SCHEMA_RE.match(text)
        if match is not None:
            return match.group(1), int(match.group(2))
    return None


def _classify_context(node: ast.AST,
                      parents: dict[ast.AST, ast.AST]) -> str:
    """producer / consumer / constant / mention for one tag site."""
    child = node
    parent = parents.get(child)
    hops = 0
    while parent is not None and hops < 12:
        if isinstance(parent, ast.Compare):
            return ROLE_CONSUMER
        if isinstance(parent, ast.Dict):
            for key, value in zip(parent.keys, parent.values):
                if value is child and isinstance(key, ast.Constant) \
                        and key.value == "schema":
                    return ROLE_PRODUCER
            return ROLE_MENTION
        if isinstance(parent, ast.keyword):
            return ROLE_PRODUCER if parent.arg == "schema" \
                else ROLE_MENTION
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and target.slice.value == "schema":
                    return ROLE_PRODUCER  # doc["schema"] = TAG
            return ROLE_CONSTANT
        if isinstance(parent, ast.AnnAssign):
            return ROLE_CONSTANT
        if isinstance(parent, (ast.Tuple, ast.List, ast.Set)):
            child, parent = parent, parents.get(parent)
            hops += 1
            continue
        if isinstance(parent, ast.Expr):
            return ROLE_MENTION  # docstrings, bare expressions
        child, parent = parent, parents.get(parent)
        hops += 1
    return ROLE_MENTION


def _constant_target(node: ast.AST,
                     parents: dict[ast.AST, ast.AST],
                     module: ModuleInfo) -> str | None:
    """The constant qualname ``node`` is (eventually) assigned to."""
    child = node
    parent = parents.get(child)
    while parent is not None:
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Name):
                    return f"{module.name}.{target.id}"
            return None
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return f"{module.name}.{parent.target.id}"
            return None
        if not isinstance(parent, (ast.Tuple, ast.List, ast.Set)):
            return None
        child, parent = parent, parents.get(parent)
    return None


def _resolve_constant(graph: PackageGraph, module: ModuleInfo,
                      dotted: str,
                      registry: SchemaRegistry
                      ) -> frozenset[tuple[str, int]] | None:
    """The schema tags a Name/Attribute reference resolves to."""
    head = dotted.split(".", 1)[0]
    candidates = []
    if head in module.imports:
        candidates.append(resolve_alias(dotted, module.imports))
    candidates.append(f"{module.name}.{dotted}")
    for candidate in candidates:
        if candidate in registry.constants:
            return registry.constants[candidate]
        # Follow one re-export hop through a package __init__.
        prefix, _, attr = candidate.rpartition(".")
        init = graph.modules.get(prefix)
        if init is not None and attr in init.imports:
            target = init.imports[attr]
            if target in registry.constants:
                return registry.constants[target]
    return None


def extract_schemas(graph: PackageGraph) -> SchemaRegistry:
    """Scan the package for schema tags, constants, and use sites."""
    registry = SchemaRegistry()
    module_parents: dict[str, dict[ast.AST, ast.AST]] = {}

    # Pass 1: literals (and the constants they are bound to).
    for name in sorted(graph.modules):
        module = graph.modules[name]
        parents = _parent_map(module.tree)
        module_parents[name] = parents
        ints = _int_constants(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Constant, ast.JoinedStr)):
                continue
            tag = _literal_tag(node, ints)
            if tag is None:
                continue
            role = _classify_context(node, parents)
            if role == ROLE_CONSTANT:
                target = _constant_target(node, parents, module)
                if target is not None:
                    existing = registry.constants.get(
                        target, frozenset())
                    registry.constants[target] = existing | {tag}
            registry.occurrences.append(SchemaOccurrence(
                family=tag[0], version=tag[1],
                path=module.relpath, line=node.lineno,
                col=node.col_offset + 1, role=role))

    # Pass 2 (twice, so tuples of constants chain): constant
    # references — aggregated tuples and producer/consumer sites.
    for _ in range(2):
        for name in sorted(graph.modules):
            module = graph.modules[name]
            parents = module_parents[name]
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.Name, ast.Attribute)):
                    continue
                if isinstance(node, ast.Attribute) and \
                        dotted_name(node) is None:
                    continue
                if isinstance(parents.get(node), ast.Attribute):
                    continue  # inner part of a longer dotted chain
                dotted = dotted_name(node)
                if dotted is None or \
                        isinstance(parents.get(node), ast.Call) and \
                        getattr(parents.get(node), "func", None) is node:
                    continue
                tags = _resolve_constant(graph, module, dotted, registry)
                if not tags:
                    continue
                role = _classify_context(node, parents)
                if role == ROLE_CONSTANT:
                    target = _constant_target(node, parents, module)
                    if target is not None:
                        existing = registry.constants.get(
                            target, frozenset())
                        registry.constants[target] = existing | tags
                    continue
                if role not in (ROLE_PRODUCER, ROLE_CONSUMER):
                    continue
                for family, version in sorted(tags):
                    occ = SchemaOccurrence(
                        family=family, version=version,
                        path=module.relpath, line=node.lineno,
                        col=node.col_offset + 1, role=role)
                    if occ not in registry.occurrences:
                        registry.occurrences.append(occ)
    return registry


def documented_schemas(design_text: str) -> set[tuple[str, int]]:
    """Every ``repro-*/N`` tag DESIGN.md mentions."""
    return {(family, int(version))
            for family, version in SCHEMA_SCAN_RE.findall(design_text)}


def _finding(occ: SchemaOccurrence, message: str) -> Finding:
    rule = get_rule(CODE)
    return Finding(path=occ.path, line=occ.line, col=occ.col,
                   code=CODE, severity=rule.severity, message=message)


def check_schema_contracts(graph: PackageGraph,
                           design_text: str | None = None
                           ) -> list[Finding]:
    """RPR605: producer/consumer and documentation contract breaches."""
    registry = extract_schemas(graph)
    findings: list[Finding] = []

    produced = registry.by_role(ROLE_PRODUCER)
    consumed = registry.by_role(ROLE_CONSUMER)
    for family in sorted(produced):
        accepted = consumed.get(family)
        if accepted is None:
            continue  # nobody parses this family: pure output document
        for version in sorted(produced[family]):
            if version in accepted:
                continue
            site = registry.first_site(family, version, ROLE_PRODUCER)
            assert site is not None
            versions = ", ".join(str(v) for v in sorted(accepted))
            findings.append(_finding(
                site,
                f"schema contract: producers emit {family}/{version} "
                f"but consumers only accept version(s) {versions}; "
                f"update the readers (and DESIGN.md) with the new "
                f"version"))

    if design_text is not None:
        documented = documented_schemas(design_text)
        for (family, version), occ in sorted(
                registry.referenced().items()):
            if (family, version) not in documented:
                findings.append(_finding(
                    occ,
                    f"schema {family}/{version} is not documented in "
                    f"DESIGN.md's schema registry; every schema tag "
                    f"must have a documented shape and version"))
    findings.sort()
    return findings


__all__ = [
    "CODE",
    "ROLE_CONSTANT",
    "ROLE_CONSUMER",
    "ROLE_MENTION",
    "ROLE_PRODUCER",
    "SCHEMA_RE",
    "SchemaOccurrence",
    "SchemaRegistry",
    "check_schema_contracts",
    "documented_schemas",
    "extract_schemas",
]
