"""Whole-program flow analysis for the lint engine (``repro lint --flow``).

The per-file rule pack (:mod:`repro.lint.checks`) sees one module at a
time, so it cannot see an unseeded RNG reaching a query digest through
three call hops, a closure smuggled into a fork pool via a parameter,
or a producer writing a schema version no reader accepts.  This
package layers a package-wide pass on top of the same engine:

* :mod:`repro.lint.flow.graph` — parses every module of a package once
  and builds the module/function/call graph (imports, re-exports,
  ``self.``-method edges, intra-package attribute resolution),
* :mod:`repro.lint.flow.taint` — interprocedural taint propagation:
  RNG-nondeterminism, wall-clock reads, and unordered set iteration
  flowing from *any* function into the digest/trace/ordered-output
  sink modules (``RPR601``–``RPR603``),
* :mod:`repro.lint.flow.pools` — picklability inference for every
  callable reaching ``ProcessPoolExecutor.submit/map`` in ``exec/``
  and ``shard/``, including callables passed in by callers
  (``RPR604``),
* :mod:`repro.lint.flow.schema` — the schema-contract registry:
  statically extracts every ``repro-*/N`` schema literal, classifies
  producer and consumer sites, and cross-checks them against each
  other and the documented registry in ``DESIGN.md`` (``RPR605``),
* :mod:`repro.lint.flow.analyzer` — orchestration: runs the passes,
  filters by ``--select``, and honours ``# repro: noqa[...]``.

Findings are ordinary :class:`repro.lint.findings.Finding` objects, so
baselines, suppression, text/JSON/SARIF output, and the CI gate treat
flow findings exactly like per-file ones.
"""

from repro.lint.flow.analyzer import FLOW_CODES, FlowReport, analyze_package
from repro.lint.flow.graph import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    PackageGraph,
    load_package,
)
from repro.lint.flow.pools import check_pool_picklability
from repro.lint.flow.schema import (
    SchemaRegistry,
    check_schema_contracts,
    documented_schemas,
    extract_schemas,
)
from repro.lint.flow.taint import (
    TAINT_CLOCK,
    TAINT_RNG,
    TAINT_UNORDERED,
    check_taint_flows,
    find_taint_sources,
)

__all__ = [
    "CallSite",
    "FLOW_CODES",
    "FlowReport",
    "FunctionInfo",
    "ModuleInfo",
    "PackageGraph",
    "SchemaRegistry",
    "TAINT_CLOCK",
    "TAINT_RNG",
    "TAINT_UNORDERED",
    "analyze_package",
    "check_pool_picklability",
    "check_schema_contracts",
    "check_taint_flows",
    "documented_schemas",
    "extract_schemas",
    "find_taint_sources",
    "load_package",
]
