"""Orchestration for the flow passes (``repro lint --flow``).

:func:`analyze_package` builds the package graph once, runs the three
flow passes over it (taint, pool picklability, schema contracts),
filters by rule selection, and applies the same ``# repro:
noqa[CODE] reason`` suppression protocol the per-file engine uses —
flow findings land on concrete source lines, so the directive works
unchanged.  The result is a :class:`FlowReport` whose findings merge
cleanly into a per-file :class:`repro.lint.engine.LintReport` (the CLI
does exactly that before applying the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.engine import _noqa_directives
from repro.lint.findings import Finding
from repro.lint.flow.graph import PackageGraph, load_package
from repro.lint.flow.pools import check_pool_picklability
from repro.lint.flow.schema import check_schema_contracts
from repro.lint.flow.taint import check_taint_flows

#: The rule codes the flow passes can emit.
FLOW_CODES = frozenset({"RPR601", "RPR602", "RPR603", "RPR604", "RPR605"})


@dataclass(slots=True)
class FlowReport:
    """Everything one flow-analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    modules: int = 0
    functions: int = 0
    call_edges: int = 0
    suppressed: int = 0


def _apply_noqa(findings: list[Finding],
                graph: PackageGraph) -> tuple[list[Finding], int]:
    """Drop findings suppressed by a same-line noqa directive."""
    directives_by_path: dict[str, dict[int, tuple[set[str], str]]] = {}
    for module in graph.modules.values():
        directives_by_path[module.relpath] = _noqa_directives(module.source)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        directive = directives_by_path.get(finding.path, {}) \
            .get(finding.line)
        if directive is not None and finding.code in directive[0]:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def analyze_package(root: str | Path, package: str = "repro",
                    rel_prefix: str | None = None,
                    design_path: str | Path | None = None,
                    select: Iterable[str] | None = None) -> FlowReport:
    """Run the whole-program passes over the package under ``root``.

    ``design_path`` points at the DESIGN.md whose schema registry the
    contract check validates against; when it is ``None`` or missing,
    the documentation contract is skipped (the producer/consumer
    contract still runs).  ``select`` narrows to specific rule codes,
    mirroring the engine's ``--select``.
    """
    graph = load_package(root, package=package, rel_prefix=rel_prefix)
    findings: list[Finding] = []
    findings.extend(check_taint_flows(graph))
    findings.extend(check_pool_picklability(graph))
    design_text: str | None = None
    if design_path is not None:
        design = Path(design_path)
        if design.is_file():
            design_text = design.read_text(encoding="utf-8")
    findings.extend(check_schema_contracts(graph, design_text))
    if select is not None:
        selected = frozenset(select)
        findings = [f for f in findings if f.code in selected]
    findings, suppressed = _apply_noqa(findings, graph)
    findings.sort()
    return FlowReport(
        findings=findings,
        modules=len(graph.modules),
        functions=len(graph.functions),
        call_edges=sum(len(sites) for sites in graph.calls.values()),
        suppressed=suppressed,
    )


__all__ = [
    "FLOW_CODES",
    "FlowReport",
    "analyze_package",
]
