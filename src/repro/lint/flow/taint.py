"""Interprocedural taint analysis (rules ``RPR601``–``RPR603``).

Three taints matter to the paper's byte-identity promise:

* ``rng`` — shared-state ``random.*`` draws, unseeded
  ``random.Random()``, and module-level ``numpy.random`` draws
  (``default_rng(seed)`` and seeded generators stay legal),
* ``clock`` — ``time.time()``/``datetime.now()``-family wall-clock and
  entropy reads (``perf_counter``/``monotonic`` feed metrics, not
  results, and stay legal),
* ``unordered`` — functions whose return/yield values are built by
  iterating a ``set``/``frozenset`` without ``sorted()``.

A function *sources* a taint when its own body (including nested
functions) exhibits it.  Taint then propagates backwards over the call
graph: every function that can reach a source through resolved call
edges is tainted.  A violation is a **sink** function — one defined in
the digest/trace/ordered-output modules (``dbms/batch.py``,
``trace/recorder.py``, ``reporting/``, ``shard/sharded.py``) — whose
taint arrives through at least one call hop.  Same-function uses are
left to the per-file rules (``RPR101``–``RPR103``), which already
police the deterministic paths; the flow rules exist for exactly the
flows those cannot see.

Chains are reconstructed deterministically (BFS, lexicographic
tie-break) so findings — and therefore baselines — are stable across
runs and ``--jobs`` values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.flow.graph import (
    CallSite,
    FunctionInfo,
    PackageGraph,
    dotted_name,
    resolve_alias,
)
from repro.lint.rules import get_rule

TAINT_RNG = "rng"
TAINT_CLOCK = "clock"
TAINT_UNORDERED = "unordered"

#: Taint kind -> the rule code that reports it at a sink.
TAINT_CODES = {
    TAINT_RNG: "RPR601",
    TAINT_CLOCK: "RPR602",
    TAINT_UNORDERED: "RPR603",
}

#: Module paths (package-relative) whose functions are taint sinks:
#: they compute digests, record traces, or build ordered output.
SINK_PKGPATHS: tuple[str, ...] = (
    "dbms/batch.py",
    "trace/recorder.py",
    "reporting/",
    "shard/sharded.py",
)

#: Shared-state ``random`` module functions (mirrors the RPR101 set).
_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "seed",
    "lognormvariate", "paretovariate", "vonmisesvariate",
    "weibullvariate",
})

#: Module-level ``numpy.random`` draws (global-generator state).
_NUMPY_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "seed", "bytes",
})

#: Wall-clock and entropy reads (mirrors the RPR102 set).
_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)


@dataclass(frozen=True, slots=True)
class TaintSource:
    """Where a taint enters the program."""

    qualname: str             # the sourcing function
    kind: str                 # TAINT_RNG / TAINT_CLOCK / TAINT_UNORDERED
    detail: str               # e.g. "random.random()" — message text
    line: int


def _matches(resolved: str, banned: str) -> bool:
    return resolved == banned or resolved.endswith("." + banned)


def _source_calls(info: FunctionInfo) -> Iterator[tuple[str, str, int]]:
    """(kind, detail, line) for every taint-sourcing call in a function."""
    imports = info.module.imports
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        resolved = resolve_alias(dotted, imports)
        if resolved == "random.Random" and not node.args:
            yield TAINT_RNG, "unseeded random.Random()", node.lineno
            continue
        head, _, tail = resolved.partition(".")
        if head == "random" and tail in _RANDOM_FNS:
            yield TAINT_RNG, f"random.{tail}()", node.lineno
            continue
        if resolved.startswith("numpy.random."):
            fn = resolved.rsplit(".", 1)[-1]
            if fn in _NUMPY_RANDOM_FNS:
                yield TAINT_RNG, f"numpy.random.{fn}()", node.lineno
                continue
            if fn == "default_rng" and not node.args and not node.keywords:
                yield (TAINT_RNG, "unseeded numpy.random.default_rng()",
                       node.lineno)
                continue
        for banned in _WALL_CLOCK:
            if _matches(resolved, banned):
                yield TAINT_CLOCK, f"{banned}()", node.lineno
                break


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


def _unordered_iteration(info: FunctionInfo) -> int | None:
    """Line of an unsorted set iteration feeding this function's output.

    Fires only when the function actually returns or yields a value —
    a set iterated purely for membership side effects orders nothing.
    """
    produces = any(
        (isinstance(n, ast.Return) and n.value is not None)
        or isinstance(n, (ast.Yield, ast.YieldFrom))
        for n in ast.walk(info.node)
    )
    if not produces:
        return None
    for node in ast.walk(info.node):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            return node.iter.lineno
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    return gen.iter.lineno
        if (isinstance(node, ast.Call)
                and dotted_name(node.func) in ("list", "tuple")
                and node.args and _is_set_expr(node.args[0])):
            return node.lineno
    return None


def find_taint_sources(graph: PackageGraph) -> dict[str, list[TaintSource]]:
    """Taint sources per function qualname (deterministic order)."""
    sources: dict[str, list[TaintSource]] = {}
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        found: list[TaintSource] = []
        seen_kinds: set[tuple[str, str]] = set()
        for kind, detail, line in _source_calls(info):
            if (kind, detail) in seen_kinds:
                continue
            seen_kinds.add((kind, detail))
            found.append(TaintSource(qualname=qual, kind=kind,
                                     detail=detail, line=line))
        line = _unordered_iteration(info)
        if line is not None:
            found.append(TaintSource(
                qualname=qual, kind=TAINT_UNORDERED,
                detail="unsorted set iteration", line=line))
        if found:
            sources[qual] = found
    return sources


@dataclass(slots=True)
class _Reach:
    """How a function reaches a taint source of one kind."""

    source: TaintSource
    hop: CallSite | None      # the outgoing call that leads source-ward
    depth: int


def _propagate(graph: PackageGraph,
               sources: dict[str, list[TaintSource]],
               kind: str) -> dict[str, _Reach]:
    """Multi-source BFS over reverse call edges for one taint kind."""
    reach: dict[str, _Reach] = {}
    frontier: list[str] = []
    for qual in sorted(sources):
        for source in sources[qual]:
            if source.kind == kind and qual not in reach:
                reach[qual] = _Reach(source=source, hop=None, depth=0)
                frontier.append(qual)
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[str] = []
        for callee in frontier:
            for site in sorted(graph.callers.get(callee, []),
                               key=lambda s: (s.caller, s.line, s.col)):
                if site.caller in reach:
                    continue
                reach[site.caller] = _Reach(
                    source=reach[callee].source, hop=site, depth=depth)
                next_frontier.append(site.caller)
        frontier = sorted(set(next_frontier))
    return reach


def _chain(graph: PackageGraph, reach: dict[str, _Reach],
           start: str) -> tuple[list[str], CallSite]:
    """The function chain from ``start`` to the source, plus first hop."""
    names = [start]
    first_hop = reach[start].hop
    assert first_hop is not None
    current = start
    while reach[current].hop is not None:
        hop = reach[current].hop
        assert hop is not None
        current = hop.callee
        names.append(current)
    return names, first_hop


def _shorten(graph: PackageGraph, qualname: str) -> str:
    prefix = graph.package + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) \
        else qualname


def check_taint_flows(graph: PackageGraph,
                      sinks: tuple[str, ...] = SINK_PKGPATHS
                      ) -> list[Finding]:
    """RPR601–603: taint reaching a sink function across call hops."""
    sources = find_taint_sources(graph)
    findings: list[Finding] = []
    sink_functions = list(graph.functions_in(sinks))
    for kind in (TAINT_RNG, TAINT_CLOCK, TAINT_UNORDERED):
        code = TAINT_CODES[kind]
        rule = get_rule(code)
        reach = _propagate(graph, sources, kind)
        for info in sink_functions:
            entry = reach.get(info.qualname)
            if entry is None or entry.hop is None:
                continue  # untainted, or sourced in-function (per-file rules)
            names, first_hop = _chain(graph, reach, info.qualname)
            source = entry.source
            chain = " -> ".join(_shorten(graph, name) for name in names)
            findings.append(Finding(
                path=first_hop.path,
                line=first_hop.line,
                col=first_hop.col,
                code=code,
                severity=rule.severity,
                message=(f"{source.detail} reaches sink "
                         f"{_shorten(graph, info.qualname)}() via "
                         f"{chain}; {_KIND_WHY[kind]}"),
            ))
    findings.sort()
    return findings


_KIND_WHY = {
    TAINT_RNG: ("digests/traces must be a pure function of the inputs "
                "— thread a seeded random.Random through instead"),
    TAINT_CLOCK: ("digests/traces must not depend on when the run "
                  "happened — inject the sim clock instead"),
    TAINT_UNORDERED: ("set iteration order varies across runs — "
                      "sorted() the set before it shapes output"),
}


__all__ = [
    "SINK_PKGPATHS",
    "TAINT_CLOCK",
    "TAINT_CODES",
    "TAINT_RNG",
    "TAINT_UNORDERED",
    "TaintSource",
    "check_taint_flows",
    "find_taint_sources",
]
