"""Module and call-graph construction for the flow analyzer.

:func:`load_package` parses every ``*.py`` under a package root once
and produces a :class:`PackageGraph`:

* a module table (dotted name -> :class:`ModuleInfo`),
* a function table (qualified name -> :class:`FunctionInfo`) covering
  module-level functions and class methods — nested functions and
  lambdas are analyzed as part of their enclosing function, which is
  the granularity taint propagation works at,
* resolved intra-package call edges (:class:`CallSite`), built by
  rewriting each call's dotted name through the module's import map
  (including relative imports) and then resolving it against the
  package symbol table, following ``__init__``-style re-export chains.

Resolution is deliberately an *under*-approximation: a call the
resolver cannot attribute to a package function simply produces no
edge.  Flow rules built on the graph therefore miss dynamic dispatch,
but never invent edges — findings stay precise enough to gate CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.lint.rules import LintError

#: How many re-export hops a dotted name may take before resolution
#: gives up (guards against pathological import cycles).
_MAX_REEXPORT_HOPS = 8


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module of the analyzed package."""

    name: str                 # dotted, e.g. "repro.dbms.batch"
    relpath: str              # repo-relative posix path (finding paths)
    pkgpath: str              # package-relative posix path ("dbms/batch.py")
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str             # "repro.dbms.batch.BatchQueryEngine.run"
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def short(self) -> str:
        """The readable name used in finding messages."""
        tail = self.qualname.split(".", 1)[1] if "." in self.qualname \
            else self.qualname
        return tail

    def param_names(self) -> list[str]:
        """Positional parameter names (posonly + regular, sans self)."""
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.class_name is not None and names and \
                names[0] in ("self", "cls"):
            names = names[1:]
        return names


@dataclass(slots=True)
class CallSite:
    """One resolved intra-package call edge."""

    caller: str               # qualname of the calling function
    callee: str               # qualname of the called function
    path: str                 # repo-relative path of the call site
    line: int
    col: int
    node: ast.Call            # the call expression itself


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_import_map(module_name: str, tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin, relative imports resolved."""
    mapping: dict[str, str] = {}
    package = module_name.rsplit(".", 1)[0] if "." in module_name \
        else module_name
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    mapping[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mapping[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the containing package.
                parts = package.split(".")
                climb = node.level - 1
                if climb >= len(parts):
                    continue
                anchor = parts[:len(parts) - climb]
                base = ".".join(anchor + ([base] if base else []))
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}"
    return mapping


def resolve_alias(dotted: str, imports: dict[str, str]) -> str:
    """Rewrite ``dotted``'s head through the module's import aliases."""
    head, _, rest = dotted.partition(".")
    if head in imports:
        origin = imports[head]
        return f"{origin}.{rest}" if rest else origin
    return dotted


class PackageGraph:
    """The parsed package: modules, functions, and resolved call edges."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> (defining module, class node)
        self.classes: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
        #: class qualname -> method name -> function qualname
        self.methods: dict[str, dict[str, str]] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}

    # -- construction -------------------------------------------------

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{info.name}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=info, node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                class_qual = f"{info.name}.{stmt.name}"
                self.classes[class_qual] = (info, stmt)
                table = self.methods.setdefault(class_qual, {})
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        qual = f"{class_qual}.{sub.name}"
                        self.functions[qual] = FunctionInfo(
                            qualname=qual, module=info, node=sub,
                            class_name=stmt.name)
                        table[sub.name] = qual

    def link(self) -> None:
        """Resolve call edges for every function (call after modules)."""
        for qual in sorted(self.functions):
            info = self.functions[qual]
            for call in _calls_in(info.node):
                callee = self._resolve_call(info, call)
                if callee is None:
                    continue
                site = CallSite(
                    caller=qual, callee=callee,
                    path=info.module.relpath,
                    line=call.lineno, col=call.col_offset + 1, node=call,
                )
                self.calls.setdefault(qual, []).append(site)
                self.callers.setdefault(callee, []).append(site)

    # -- resolution ---------------------------------------------------

    def resolve_symbol(self, dotted: str) -> str | None:
        """Resolve a canonical dotted name to a function qualname.

        Handles direct functions, class methods, and re-exports:
        ``repro.trace.get_recorder`` resolves through
        ``trace/__init__.py``'s own import of the symbol.
        """
        return self._resolve_symbol(dotted, hops=0)

    def _resolve_symbol(self, dotted: str, hops: int) -> str | None:
        if hops > _MAX_REEXPORT_HOPS:
            return None
        if dotted in self.functions:
            return dotted
        # Class method: longest prefix that is a known class.
        prefix, _, attr = dotted.rpartition(".")
        if prefix in self.methods and attr in self.methods[prefix]:
            return self.methods[prefix][attr]
        # Re-export: the longest module prefix re-imports the remainder.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            module = self.modules.get(mod_name)
            if module is None:
                continue
            remainder = parts[cut:]
            head = remainder[0]
            if head in module.imports:
                target = module.imports[head]
                rest = ".".join(remainder[1:])
                full = f"{target}.{rest}" if rest else target
                return self._resolve_symbol(full, hops + 1)
            return None
        return None

    def _resolve_call(self, info: FunctionInfo,
                      call: ast.Call) -> str | None:
        func = call.func
        module = info.module
        # self.method() / cls.method() inside a class.
        if (info.class_name is not None
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")):
            class_qual = f"{module.name}.{info.class_name}"
            return self.methods.get(class_qual, {}).get(func.attr)
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head = dotted.split(".", 1)[0]
        if head in module.imports:
            return self.resolve_symbol(resolve_alias(dotted, module.imports))
        # Unimported bare name: a sibling defined in this module.
        return self.resolve_symbol(f"{module.name}.{dotted}")

    # -- queries ------------------------------------------------------

    def functions_in(self, pkgpath_prefixes: tuple[str, ...]
                     ) -> Iterator[FunctionInfo]:
        """Functions whose module's package path matches a pattern.

        A pattern ending in ``/`` matches every module under that
        directory; any other pattern matches one module path exactly.
        """
        for qual in sorted(self.functions):
            info = self.functions[qual]
            if matches_pkgpath(info.module.pkgpath, pkgpath_prefixes):
                yield info


def matches_pkgpath(pkgpath: str, patterns: tuple[str, ...]) -> bool:
    """Whether a package-relative module path matches any pattern."""
    for pattern in patterns:
        if pattern.endswith("/"):
            if pkgpath.startswith(pattern):
                return True
        elif pkgpath == pattern:
            return True
    return False


def _calls_in(func: ast.FunctionDef | ast.AsyncFunctionDef
              ) -> Iterator[ast.Call]:
    """Every call inside ``func``, including nested defs and lambdas."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            yield node


def load_package(root: str | Path, package: str = "repro",
                 rel_prefix: str | None = None) -> PackageGraph:
    """Parse the package tree under ``root`` into a :class:`PackageGraph`.

    ``root`` is the directory that *is* the package (its ``__init__.py``
    lives directly inside).  ``rel_prefix`` is prepended to
    package-relative paths to form the repo-relative paths findings
    carry; it defaults to ``root`` as given.
    """
    base = Path(root)
    if not base.is_dir():
        raise LintError(f"flow analysis root not found: {base}")
    prefix = rel_prefix if rel_prefix is not None else base.as_posix()
    graph = PackageGraph(package)
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        pkgpath = path.relative_to(base).as_posix()
        dotted = pkgpath[:-3].replace("/", ".")
        if dotted.endswith("__init__"):
            dotted = dotted[:-len("__init__")].rstrip(".")
        name = f"{package}.{dotted}" if dotted else package
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            # The per-file pass reports RPR000; the flow pass just
            # leaves the unparseable module out of the graph.
            continue
        info = ModuleInfo(
            name=name,
            relpath=f"{prefix}/{pkgpath}" if prefix else pkgpath,
            pkgpath=pkgpath,
            source=source,
            tree=tree,
            imports=module_import_map(name, tree),
        )
        graph.add_module(info)
    graph.link()
    return graph


__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "PackageGraph",
    "dotted_name",
    "load_package",
    "matches_pkgpath",
    "module_import_map",
    "resolve_alias",
]
