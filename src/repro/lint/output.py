"""Text and JSON renderings of a lint report.

The JSON document (schema ``repro-lint/1``) is what the CI job uploads
as ``lint-report.json``; its shape is pinned by
``tests/lint/test_output.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.lint.engine import LintReport

#: Schema tag of the JSON report document.
REPORT_SCHEMA = "repro-lint/1"


def format_text(report: LintReport, out: TextIO) -> None:
    """Render findings one per line, plus a summary trailer."""
    for finding in report.findings:
        print(finding.format_text(), file=out)
    counts = report.counts
    breakdown = ", ".join(f"{code} x{counts[code]}"
                          for code in sorted(counts))
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    trailer = (f"lint: {status} in {report.files} file(s)"
               f" ({report.suppressed} suppressed,"
               f" {report.baselined} baselined)")
    if breakdown:
        trailer += f" [{breakdown}]"
    print(trailer, file=out)


def report_document(report: LintReport) -> dict[str, object]:
    """The ``repro-lint/1`` JSON document for ``report``."""
    return {
        "schema": REPORT_SCHEMA,
        "files": report.files,
        "ok": report.ok,
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": report.counts,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
    }


def format_json(report: LintReport, out: TextIO) -> None:
    """Render the JSON report document to ``out``."""
    json.dump(report_document(report), out, indent=2)
    out.write("\n")


def write_json(report: LintReport, path: str | Path) -> None:
    """Write the JSON report document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        format_json(report, handle)


__all__ = [
    "REPORT_SCHEMA",
    "format_json",
    "format_text",
    "report_document",
    "write_json",
]
