"""Text and JSON renderings of a lint report.

The JSON document (schema ``repro-lint/1``) is what the CI job uploads
as ``lint-report.json``; its shape is pinned by
``tests/lint/test_output.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.lint.engine import LintReport

#: Schema tag of the JSON report document.
REPORT_SCHEMA = "repro-lint/1"


def format_text(report: LintReport, out: TextIO) -> None:
    """Render findings one per line, plus a summary trailer."""
    for finding in report.findings:
        print(finding.format_text(), file=out)
    counts = report.counts
    breakdown = ", ".join(f"{code} x{counts[code]}"
                          for code in sorted(counts))
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    trailer = (f"lint: {status} in {report.files} file(s)"
               f" ({report.suppressed} suppressed,"
               f" {report.baselined} baselined)")
    if breakdown:
        trailer += f" [{breakdown}]"
    print(trailer, file=out)


def report_document(report: LintReport) -> dict[str, object]:
    """The ``repro-lint/1`` JSON document for ``report``."""
    return {
        "schema": REPORT_SCHEMA,
        "files": report.files,
        "ok": report.ok,
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": report.counts,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
    }


def format_json(report: LintReport, out: TextIO) -> None:
    """Render the JSON report document to ``out``."""
    json.dump(report_document(report), out, indent=2)
    out.write("\n")


def write_json(report: LintReport, path: str | Path) -> None:
    """Write the JSON report document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        format_json(report, handle)


#: SARIF spec version emitted (the version code-scanning ingests).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def sarif_document(report: LintReport) -> dict[str, object]:
    """The SARIF 2.1.0 log for ``report`` (code-scanning annotation).

    Only rules that actually fired are listed in the driver, sorted by
    code, and results follow the report's (already sorted) finding
    order — the document is deterministic for a given report.
    """
    from repro.lint.rules import get_rule

    codes = sorted({finding.code for finding in report.findings})
    rule_index = {code: i for i, code in enumerate(codes)}
    rules = []
    for code in codes:
        rule = get_rule(code)
        rules.append({
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": "error" if rule.severity == "error"
                else "warning",
            },
        })
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": "error" if finding.severity == "error"
            else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def format_sarif(report: LintReport, out: TextIO) -> None:
    """Render the SARIF log to ``out``."""
    json.dump(sarif_document(report), out, indent=2)
    out.write("\n")


def write_sarif(report: LintReport, path: str | Path) -> None:
    """Write the SARIF log to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        format_sarif(report, handle)


__all__ = [
    "REPORT_SCHEMA",
    "SARIF_VERSION",
    "format_json",
    "format_sarif",
    "format_text",
    "report_document",
    "sarif_document",
    "write_json",
    "write_sarif",
]
