"""Paper-invariant static analysis (``repro lint``).

The reproduction's headline guarantees — dead-reckoning math matching
Propositions 1–4, and parallel/batched output byte-identical to serial
— rest on invariants that normal tests cannot watch at every commit:
determinism of the sim/exec/batch paths, fork/pickle safety in the
executor, numeric hygiene in the cost algebra, a stable public API
surface, and the observability discipline from PR 1.  This package
machine-checks them at rest:

* :mod:`repro.lint.rules` — rule registry + tag-based path scoping,
* :mod:`repro.lint.checks` — the rule pack (``RPR1xx``–``RPR5xx``),
* :mod:`repro.lint.engine` — file collection, dispatch, and the
  ``# repro: noqa[CODE] reason`` suppression protocol,
* :mod:`repro.lint.baseline` — committed-baseline mode
  (``lint-baseline.json``: old findings pass, new findings fail),
* :mod:`repro.lint.output` — text, ``repro-lint/1`` JSON, and SARIF
  2.1.0 renderings,
* :mod:`repro.lint.flow` — the whole-program pass (``--flow``):
  call-graph construction, interprocedural determinism taint
  (``RPR601``–``RPR603``), pool-picklability inference (``RPR604``),
  and the schema-contract registry (``RPR605``).

Entry points: ``repro lint [paths]`` (CLI; ``--jobs N`` fans the
per-file pass over a process pool with byte-identical output),
``make lint``, and the CI ``lint`` job.  See README "Static analysis"
for the workflow, including how to add a rule and when to baseline
versus suppress.
"""

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    baseline_entries,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Config,
    LintReport,
    ModuleReport,
    collect_files,
    lint_paths,
    lint_source,
)
from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.lint.output import (
    REPORT_SCHEMA,
    format_json,
    format_sarif,
    format_text,
    report_document,
    sarif_document,
    write_json,
    write_sarif,
)
from repro.lint.rules import (
    LintError,
    ModuleContext,
    Rule,
    all_rules,
    classify_path,
    get_rule,
    known_codes,
    register_rule,
)

__all__ = [
    "BASELINE_SCHEMA",
    "Config",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "ModuleReport",
    "REPORT_SCHEMA",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rules",
    "apply_baseline",
    "baseline_entries",
    "classify_path",
    "collect_files",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "known_codes",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "report_document",
    "sarif_document",
    "write_baseline",
    "write_json",
    "write_sarif",
]
