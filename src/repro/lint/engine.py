"""The lint engine: file collection, rule dispatch, and suppression.

Run :func:`lint_paths` over files and directories; it parses each
module once, dispatches the rules whose scope covers the module's path
tags (see :mod:`repro.lint.rules`), applies inline suppressions, and
returns a :class:`LintReport`.

Inline suppression matches ruff/flake8 ergonomics but is deliberately
narrower — a code is always required, and a **reason** is required
too::

    t = wall_clock()  # repro: noqa[RPR102] trace timestamps are data here

A ``# repro: noqa[...]`` naming an unregistered code raises finding
``RPR901``; one without a reason string raises ``RPR902``.  Suppression
is per-line and per-code: it never hides findings of other codes on the
same line.

Directory walks skip ``tests/lint/fixtures/`` (deliberately-bad rule
fixtures) and the usual cache directories, but a path passed
*explicitly* is always linted — ``repro lint
tests/lint/fixtures/sim/bad_rng.py`` works as expected.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import (
    LintError,
    ModuleContext,
    checkers_for,
    classify_path,
    known_codes,
)

#: Directory-name fragments skipped during directory walks.  Explicit
#: file arguments bypass this list.
DEFAULT_EXCLUDES = (
    "tests/lint/fixtures",
    "__pycache__",
    ".git",
    ".venv",
    "build",
    ".egg-info",
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True, slots=True)
class Config:
    """Engine configuration (all fields have working defaults)."""

    root: Path = field(default_factory=Path.cwd)
    select: frozenset[str] | None = None
    exclude: tuple[str, ...] = DEFAULT_EXCLUDES


@dataclass(slots=True)
class LintReport:
    """Everything one engine run produced."""

    findings: list[Finding]
    files: int
    suppressed: int
    baselined: int = 0

    @property
    def counts(self) -> dict[str, int]:
        """Unsuppressed finding count per rule code."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str | Path],
                  config: Config) -> list[Path]:
    """Expand ``paths`` into the sorted, deduplicated file list.

    Files are taken as given (even when an exclude fragment matches);
    directories are walked recursively with excludes applied.
    """
    seen: set[Path] = set()
    ordered: list[Path] = []

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            ordered.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            add(path)
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                posix = found.as_posix()
                if any(fragment in posix for fragment in config.exclude):
                    continue
                add(found)
        else:
            raise LintError(f"no such file or directory: {path}")
    return ordered


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _noqa_directives(source: str) -> dict[int, tuple[set[str], str]]:
    """Line number -> (codes, reason) for every suppression comment.

    Tokenizes rather than regex-scanning raw lines so that string
    literals and docstrings *mentioning* ``# repro: noqa[...]`` (for
    example, this engine's own documentation) are not treated as
    directives.
    """
    directives: dict[int, tuple[set[str], str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            codes = {code.strip()
                     for code in match.group("codes").split(",")
                     if code.strip()}
            directives[token.start[0]] = (codes, match.group("reason"))
    except tokenize.TokenizeError:  # pragma: no cover - parse caught it
        pass
    return directives


@dataclass(slots=True)
class ModuleReport:
    """Findings (and suppression count) for one linted module."""

    findings: list[Finding]
    suppressed: int


def lint_source(source: str, relpath: str,
                config: Config | None = None) -> ModuleReport:
    """Lint one module from source text (the in-memory entry point)."""
    config = config if config is not None else Config()
    lines = tuple(source.splitlines())
    tags = classify_path(relpath)
    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return ModuleReport(findings=[Finding(
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            code="RPR000", severity="error",
            message=f"syntax error: {exc.msg}",
        )], suppressed=0)
    ctx = ModuleContext(relpath=relpath, tree=tree, lines=lines, tags=tags)
    for rule in checkers_for(tags, select=config.select):
        assert rule.check is not None
        findings.extend(rule.check(ctx))

    directives = _noqa_directives(source)
    kept: list[Finding] = []
    used: dict[int, set[str]] = {}
    for finding in findings:
        directive = directives.get(finding.line)
        if directive is not None and finding.code in directive[0]:
            used.setdefault(finding.line, set()).add(finding.code)
        else:
            kept.append(finding)
    suppressed = len(findings) - len(kept)

    registered = known_codes()
    for number, (codes, reason) in sorted(directives.items()):
        if _selected("RPR901", config):
            for code in sorted(codes - registered):
                kept.append(Finding(
                    path=relpath, line=number, col=1, code="RPR901",
                    severity="error",
                    message=f"noqa references unknown rule code {code!r}",
                ))
        if _selected("RPR902", config) and not reason:
            kept.append(Finding(
                path=relpath, line=number, col=1, code="RPR902",
                severity="error",
                message="noqa carries no reason; say why the finding is "
                        "intentional",
            ))
    kept.sort()
    return ModuleReport(findings=kept, suppressed=suppressed)


def _selected(code: str, config: Config) -> bool:
    return config.select is None or code in config.select


def lint_paths(paths: Sequence[str | Path],
               config: Config | None = None) -> LintReport:
    """Lint files/directories and return the aggregate report."""
    config = config if config is not None else Config()
    files = collect_files(paths, config)
    findings: list[Finding] = []
    suppressed = 0
    for path in files:
        relpath = _relpath(path, config.root)
        source = path.read_text(encoding="utf-8")
        module = lint_source(source, relpath, config)
        findings.extend(module.findings)
        suppressed += module.suppressed
    findings.sort()
    return LintReport(findings=findings, files=len(files),
                      suppressed=suppressed)


def iter_rule_codes(findings: Iterable[Finding]) -> list[str]:
    """Sorted unique codes present in ``findings`` (test helper)."""
    return sorted({finding.code for finding in findings})


__all__ = [
    "Config",
    "DEFAULT_EXCLUDES",
    "LintReport",
    "ModuleReport",
    "collect_files",
    "iter_rule_codes",
    "lint_paths",
    "lint_source",
]
