"""The lint engine: file collection, rule dispatch, and suppression.

Run :func:`lint_paths` over files and directories; it parses each
module once, dispatches the rules whose scope covers the module's path
tags (see :mod:`repro.lint.rules`), applies inline suppressions, and
returns a :class:`LintReport`.

Inline suppression matches ruff/flake8 ergonomics but is deliberately
narrower — a code is always required, and a **reason** is required
too::

    t = wall_clock()  # repro: noqa[RPR102] trace timestamps are data here

A ``# repro: noqa[...]`` naming an unregistered code raises finding
``RPR901``; one without a reason string raises ``RPR902``.  Suppression
is per-line and per-code: it never hides findings of other codes on the
same line.

Directory walks skip ``tests/lint/fixtures/`` (deliberately-bad rule
fixtures) and the usual cache directories, but a path passed
*explicitly* is always linted — ``repro lint
tests/lint/fixtures/sim/bad_rng.py`` works as expected.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import (
    LintError,
    ModuleContext,
    checkers_for,
    classify_path,
    known_codes,
)

#: Directory-name fragments skipped during directory walks.  Explicit
#: file arguments bypass this list.
DEFAULT_EXCLUDES = (
    "tests/lint/fixtures",
    "__pycache__",
    ".git",
    ".venv",
    "build",
    ".egg-info",
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True, slots=True)
class Config:
    """Engine configuration (all fields have working defaults)."""

    root: Path = field(default_factory=Path.cwd)
    select: frozenset[str] | None = None
    exclude: tuple[str, ...] = DEFAULT_EXCLUDES


@dataclass(slots=True)
class LintReport:
    """Everything one engine run produced."""

    findings: list[Finding]
    files: int
    suppressed: int
    baselined: int = 0

    @property
    def counts(self) -> dict[str, int]:
        """Unsuppressed finding count per rule code."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str | Path],
                  config: Config) -> list[Path]:
    """Expand ``paths`` into the sorted, deduplicated file list.

    Files are taken as given (even when an exclude fragment matches);
    directories are walked recursively with excludes applied.
    """
    seen: set[Path] = set()
    ordered: list[Path] = []

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            ordered.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            add(path)
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                posix = found.as_posix()
                if any(fragment in posix for fragment in config.exclude):
                    continue
                add(found)
        else:
            raise LintError(f"no such file or directory: {path}")
    return ordered


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _noqa_comments(source: str) -> list[tuple[int, int, set[str], str]]:
    """Every suppression comment: (line, logical start, codes, reason).

    Tokenizes rather than regex-scanning raw lines so that string
    literals and docstrings *mentioning* ``# repro: noqa[...]`` (for
    example, this engine's own documentation) are not treated as
    directives.  ``logical start`` is the first physical line of the
    logical statement the comment trails — for a directive at the end
    of a multi-line call, that is the line findings anchor to.
    """
    comments: list[tuple[int, int, set[str], str]] = []
    logical_start: int | None = None
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.NEWLINE:
                logical_start = None
                continue
            if token.type == tokenize.COMMENT:
                match = _NOQA_RE.search(token.string)
                if match is None:
                    continue
                codes = {code.strip()
                         for code in match.group("codes").split(",")
                         if code.strip()}
                start = logical_start if logical_start is not None \
                    else token.start[0]
                comments.append((token.start[0], start, codes,
                                 match.group("reason")))
                continue
            if token.type in (tokenize.NL, tokenize.INDENT,
                              tokenize.DEDENT, tokenize.ENCODING,
                              tokenize.ENDMARKER):
                continue
            if logical_start is None:
                logical_start = token.start[0]
    except tokenize.TokenizeError:  # pragma: no cover - parse caught it
        pass
    return comments


def _noqa_directives(source: str) -> dict[int, tuple[set[str], str]]:
    """Line number -> (codes, reason) for every suppression comment.

    A directive suppresses findings on its own physical line *and* on
    the first line of the logical statement it trails, so a noqa on
    the closing line of a multi-line call still reaches the finding
    (which anchors to the statement's first line).
    """
    directives: dict[int, tuple[set[str], str]] = {}
    for line, logical_start, codes, reason in _noqa_comments(source):
        for number in {line, logical_start}:
            if number in directives:
                merged = directives[number][0] | codes
                directives[number] = (merged, directives[number][1] or
                                      reason)
            else:
                directives[number] = (codes, reason)
    return directives


@dataclass(slots=True)
class ModuleReport:
    """Findings (and suppression count) for one linted module."""

    findings: list[Finding]
    suppressed: int


def lint_source(source: str, relpath: str,
                config: Config | None = None) -> ModuleReport:
    """Lint one module from source text (the in-memory entry point)."""
    config = config if config is not None else Config()
    lines = tuple(source.splitlines())
    tags = classify_path(relpath)
    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return ModuleReport(findings=[Finding(
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            code="RPR000", severity="error",
            message=f"syntax error: {exc.msg}",
        )], suppressed=0)
    ctx = ModuleContext(relpath=relpath, tree=tree, lines=lines, tags=tags)
    for rule in checkers_for(tags, select=config.select):
        assert rule.check is not None
        findings.extend(rule.check(ctx))

    directives = _noqa_directives(source)
    kept: list[Finding] = []
    used: dict[int, set[str]] = {}
    for finding in findings:
        directive = directives.get(finding.line)
        if directive is not None and finding.code in directive[0]:
            used.setdefault(finding.line, set()).add(finding.code)
        else:
            kept.append(finding)
    suppressed = len(findings) - len(kept)

    registered = known_codes()
    for number, _, codes, reason in _noqa_comments(source):
        if _selected("RPR901", config):
            for code in sorted(codes - registered):
                kept.append(Finding(
                    path=relpath, line=number, col=1, code="RPR901",
                    severity="error",
                    message=f"noqa references unknown rule code {code!r}",
                ))
        if _selected("RPR902", config) and not reason:
            kept.append(Finding(
                path=relpath, line=number, col=1, code="RPR902",
                severity="error",
                message="noqa carries no reason; say why the finding is "
                        "intentional",
            ))
    kept.sort()
    return ModuleReport(findings=kept, suppressed=suppressed)


def _selected(code: str, config: Config) -> bool:
    return config.select is None or code in config.select


def _lint_file_task(item: tuple[str, str, Config]) -> ModuleReport:
    """Worker body for the parallel per-file pass (must pickle)."""
    path_str, relpath, config = item
    source = Path(path_str).read_text(encoding="utf-8")
    return lint_source(source, relpath, config)


def lint_paths(paths: Sequence[str | Path],
               config: Config | None = None,
               jobs: int = 1) -> LintReport:
    """Lint files/directories and return the aggregate report.

    With ``jobs > 1`` the per-file pass fans out over a process pool.
    Each file's report is computed independently and reassembled in
    the canonical (sorted) file order before the final findings sort,
    so the output is byte-identical to a serial run.
    """
    config = config if config is not None else Config()
    files = collect_files(paths, config)
    items = [(str(path), _relpath(path, config.root), config)
             for path in files]
    if jobs > 1 and len(items) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(items))
                                 ) as pool:
            reports = list(pool.map(_lint_file_task, items,
                                    chunksize=8))
    else:
        reports = [_lint_file_task(item) for item in items]
    findings: list[Finding] = []
    suppressed = 0
    for module in reports:
        findings.extend(module.findings)
        suppressed += module.suppressed
    findings.sort()
    return LintReport(findings=findings, files=len(files),
                      suppressed=suppressed)


def iter_rule_codes(findings: Iterable[Finding]) -> list[str]:
    """Sorted unique codes present in ``findings`` (test helper)."""
    return sorted({finding.code for finding in findings})


__all__ = [
    "Config",
    "DEFAULT_EXCLUDES",
    "LintReport",
    "ModuleReport",
    "collect_files",
    "iter_rule_codes",
    "lint_paths",
    "lint_source",
]
