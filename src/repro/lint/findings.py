"""Finding and severity types for the paper-invariant lint engine.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately excludes the line number: baselines
(see :mod:`repro.lint.baseline`) match findings by ``path::code::
message`` so that unrelated edits shifting a file's line numbers do not
invalidate the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rule severities.  Both fail the gate — the engine is strict by
#: design, since every rule guards a reproduction invariant — but the
#: distinction is reported so readers can triage.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str

    def key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.path}::{self.code}::{self.message}"

    def format_text(self) -> str:
        """The one-line human-readable rendering."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity}] {self.message}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready rendering (see the ``repro-lint/1`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }


def valid_severity(severity: str) -> bool:
    """Whether ``severity`` is one of the known severity labels."""
    return severity in _SEVERITIES


__all__ = [
    "Finding",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "valid_severity",
]
