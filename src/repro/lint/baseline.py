"""Committed-baseline mode: pre-existing findings don't fail, new ones do.

A baseline is a JSON document (``repro-lint-baseline/1``) mapping each
finding's line-number-free key — ``path::code::message`` (see
:meth:`repro.lint.findings.Finding.key`) — to how many such findings
existed when the baseline was recorded.  Applying a baseline removes up
to that many matching findings from a report; anything beyond the
recorded count (a *new* finding, even of a grandfathered kind) still
fails.  Keys are line-free so ordinary edits that shift code around do
not invalidate the baseline; fixing a baselined finding simply leaves
its entry unused until the next ``--update-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import LintReport
from repro.lint.findings import Finding
from repro.lint.rules import LintError

#: Schema tag written to (and required of) every baseline document.
BASELINE_SCHEMA = "repro-lint-baseline/1"

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def baseline_entries(findings: list[Finding]) -> dict[str, int]:
    """Count findings by baseline key."""
    entries: dict[str, int] = {}
    for finding in findings:
        key = finding.key()
        entries[key] = entries.get(key, 0) + 1
    return entries


def write_baseline(report: LintReport, path: str | Path) -> int:
    """Record ``report``'s findings as the new baseline; returns count."""
    entries = baseline_entries(report.findings)
    document = {
        "schema": BASELINE_SCHEMA,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    target = Path(path)
    target.write_text(json.dumps(document, indent=2) + "\n",
                      encoding="utf-8")
    return sum(entries.values())


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read and validate a baseline document's entries."""
    source = Path(path)
    if not source.is_file():
        raise LintError(f"baseline not found: {source} "
                        f"(create one with --update-baseline)")
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {source} is not valid JSON: {exc}"
                        ) from None
    if (not isinstance(document, dict)
            or document.get("schema") != BASELINE_SCHEMA
            or not isinstance(document.get("entries"), dict)):
        raise LintError(
            f"baseline {source} does not match schema {BASELINE_SCHEMA!r}"
        )
    entries: dict[str, int] = {}
    for key, count in document["entries"].items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise LintError(
                f"baseline {source}: entry {key!r} -> {count!r} is "
                f"malformed (want string key -> positive count)"
            )
        entries[key] = count
    return entries


def apply_baseline(report: LintReport,
                   entries: dict[str, int]) -> LintReport:
    """Drop up to the baselined count of each matching finding."""
    budget = dict(entries)
    kept: list[Finding] = []
    baselined = 0
    for finding in report.findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined += 1
        else:
            kept.append(finding)
    return LintReport(
        findings=kept,
        files=report.files,
        suppressed=report.suppressed,
        baselined=report.baselined + baselined,
    )


__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "baseline_entries",
    "load_baseline",
    "write_baseline",
]
