"""Rule registry and path scoping for the lint engine.

Every rule is a :class:`Rule`: a stable code (``RPR1xx`` determinism,
``RPR2xx`` exec safety, ``RPR3xx`` numeric hygiene, ``RPR4xx`` API
consistency, ``RPR5xx`` observability discipline, ``RPR9xx`` engine
hygiene), a severity, a one-line description, a *scope* naming the
path family it applies to, and an AST checker.  Checkers live in
:mod:`repro.lint.checks` and register themselves via :func:`register`.

Scoping is tag-based.  :func:`classify_path` maps a repo-relative path
to a set of tags (``deterministic``, ``exec``, ``vec``, ``shard``,
``obs``, ``library``, ``test``, ``script``) and each scope is a
predicate over those tags.
Paths under ``tests/lint/fixtures/`` have that prefix stripped before
classification, so a fixture at ``tests/lint/fixtures/sim/bad.py`` is
scoped exactly like a real ``sim/`` module — fixtures exercise rules
under the same scoping the production tree sees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import ReproError
from repro.lint.findings import Finding, valid_severity


class LintError(ReproError):
    """A lint rule, configuration, or baseline is malformed."""


#: Fixture trees mimic production paths below this prefix; it is
#: stripped before classification (see module docstring).
FIXTURE_PREFIX = "tests/lint/fixtures/"


def classify_path(relpath: str) -> frozenset[str]:
    """Map a repo-relative posix path to its scoping tags."""
    rel = relpath.replace("\\", "/")
    if FIXTURE_PREFIX in rel:
        rel = rel.split(FIXTURE_PREFIX, 1)[1]
    parts = rel.split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    tags = set()
    if "tests" in parts or stem.startswith("test_") or stem == "conftest":
        tags.add("test")
    if ("sim" in parts or "exec" in parts or "vec" in parts
            or rel.endswith("dbms/batch.py")):
        tags.add("deterministic")
    if "exec" in parts:
        tags.add("exec")
    if "shard" in parts:
        tags.add("shard")
    if "vec" in parts:
        tags.add("vec")
    if "obs" in parts:
        tags.add("obs")
    if "dbms" in parts or "index" in parts:
        tags.add("dbms")
    if "src" in parts or parts[0] == "repro":
        tags.add("library")
    if stem in ("__main__", "conftest", "setup"):
        tags.add("script")
    return frozenset(tags)


def _scope_everywhere(tags: frozenset[str]) -> bool:
    return True


def _scope_deterministic(tags: frozenset[str]) -> bool:
    return "deterministic" in tags


def _scope_exec(tags: frozenset[str]) -> bool:
    return "exec" in tags and "test" not in tags


def _scope_library(tags: frozenset[str]) -> bool:
    return "library" in tags and "test" not in tags


def _scope_library_not_obs(tags: frozenset[str]) -> bool:
    return _scope_library(tags) and "obs" not in tags


def _scope_dbms_index(tags: frozenset[str]) -> bool:
    return "dbms" in tags and "test" not in tags


def _scope_vec(tags: frozenset[str]) -> bool:
    return "vec" in tags and "test" not in tags


def _scope_shard(tags: frozenset[str]) -> bool:
    return "shard" in tags and "test" not in tags


def _scope_obs(tags: frozenset[str]) -> bool:
    return "obs" in tags and "test" not in tags


#: Scope name -> predicate over path tags.
SCOPES: dict[str, Callable[[frozenset[str]], bool]] = {
    "everywhere": _scope_everywhere,
    "deterministic": _scope_deterministic,
    "exec": _scope_exec,
    "library": _scope_library,
    "library-not-obs": _scope_library_not_obs,
    "dbms-index": _scope_dbms_index,
    "vec": _scope_vec,
    "shard": _scope_shard,
    "obs": _scope_obs,
}


@dataclass(frozen=True, slots=True)
class ModuleContext:
    """One parsed module as seen by rule checkers."""

    relpath: str
    tree: ast.Module
    lines: tuple[str, ...]
    tags: frozenset[str] = field(default_factory=frozenset)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a finding for ``node`` under this module's path."""
        rule = get_rule(code)
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            severity=rule.severity,
            message=message,
        )


Checker = Callable[[ModuleContext], Iterator[Finding]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    severity: str
    scope: str
    description: str
    check: Checker | None  # None: enforced by the engine itself

    def applies_to(self, tags: frozenset[str]) -> bool:
        return SCOPES[self.scope](tags)


_REGISTRY: dict[str, Rule] = {}


def register(code: str, name: str, severity: str, scope: str,
             description: str) -> Callable[[Checker], Checker]:
    """Register the decorated checker as rule ``code``."""

    def decorate(check: Checker) -> Checker:
        register_rule(Rule(code=code, name=name, severity=severity,
                           scope=scope, description=description,
                           check=check))
        return check

    return decorate


def register_rule(rule: Rule) -> None:
    """Add ``rule`` to the registry (codes must be unique)."""
    if rule.code in _REGISTRY:
        raise LintError(f"lint rule {rule.code} registered twice")
    if not valid_severity(rule.severity):
        raise LintError(
            f"lint rule {rule.code} has unknown severity {rule.severity!r}"
        )
    if rule.scope not in SCOPES:
        raise LintError(
            f"lint rule {rule.code} has unknown scope {rule.scope!r}"
        )
    _REGISTRY[rule.code] = rule


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise LintError(f"no lint rule with code {code!r}") from None


def known_codes() -> frozenset[str]:
    """The set of registered rule codes."""
    _ensure_loaded()
    return frozenset(_REGISTRY)


def checkers_for(tags: frozenset[str],
                 select: Iterable[str] | None = None) -> list[Rule]:
    """The rules (with checkers) that apply to a module with ``tags``."""
    _ensure_loaded()
    selected = None if select is None else frozenset(select)
    return [
        rule for rule in all_rules()
        if rule.check is not None and rule.applies_to(tags)
        and (selected is None or rule.code in selected)
    ]


def _ensure_loaded() -> None:
    # The rule pack registers on import; importing it lazily here keeps
    # rules.py importable from checks.py without a cycle.
    if not _REGISTRY:
        import repro.lint.checks  # noqa: F401  (import-for-effect)


__all__ = [
    "Checker",
    "FIXTURE_PREFIX",
    "LintError",
    "ModuleContext",
    "Rule",
    "SCOPES",
    "all_rules",
    "checkers_for",
    "classify_path",
    "get_rule",
    "known_codes",
    "register",
    "register_rule",
]
