"""Uncertainty intervals — the route segment an object must lie on (§4.1).

Given a position attribute with declared speed ``v`` and the policy's
deviation bounds, the object's distance from its last reported position
``t`` time units after the update lies in

    [ l(t), u(t) ]  =  [ v t - BS(t),  v t + BF(t) ]

where ``BS``/``BF`` bound the slow/fast deviation.  The *uncertainty
interval* is the piece of route between the points at those two travel
distances: "as far as the DBMS knows, at time t the moving object can
be at any point in the uncertainty interval, and nowhere else".

This module keeps intervals in travel coordinates (distance along the
route in the direction of travel, measured from the route's travel
origin) and converts to geometry on demand; the geometry is what the
may/must query semantics and the o-plane index consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import DeviationBounds
from repro.core.position import PositionAttribute
from repro.errors import PolicyError
from repro.geometry.point import Point
from repro.geometry.polyline import Polyline
from repro.routes.route import Route


@dataclass(frozen=True, slots=True)
class UncertaintyInterval:
    """A closed interval of travel distances along a specific route."""

    route_id: str
    direction: int
    #: Travel distance of the interval's near end (miles from the travel
    #: origin of the route); ``lower <= upper``.
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise PolicyError(
                f"inverted uncertainty interval [{self.lower}, {self.upper}]"
            )

    @property
    def width(self) -> float:
        """Length of the interval in miles (the position uncertainty)."""
        return max(self.upper - self.lower, 0.0)

    @property
    def midpoint_travel(self) -> float:
        return (self.lower + self.upper) / 2.0

    def contains_travel(self, travel: float) -> bool:
        """True when a travel distance lies inside the closed interval."""
        return self.lower - 1e-12 <= travel <= self.upper + 1e-12

    def endpoints(self, route: Route) -> tuple[Point, Point]:
        """The interval's two boundary points as plane geometry."""
        self._check_route(route)
        return (
            route.travel_point(self.lower, self.direction),
            route.travel_point(self.upper, self.direction),
        )

    def geometry(self, route: Route) -> Polyline:
        """The interval as a piece of route geometry.

        This is the line segment (in general, polyline) between the
        points ``l(t)`` and ``u(t)`` that §4 intersects with query
        polygons.
        """
        self._check_route(route)
        return route.interval_polyline(self.lower, self.upper, self.direction)

    def _check_route(self, route: Route) -> None:
        if route.route_id != self.route_id:
            raise PolicyError(
                f"interval is on route {self.route_id!r}, got {route.route_id!r}"
            )


def uncertainty_interval(attribute: PositionAttribute, route: Route,
                         bounds: DeviationBounds, t: float) -> UncertaintyInterval:
    """The uncertainty interval of an object at absolute time ``t``.

    ``attribute`` is the object's position attribute; ``bounds`` the
    deviation bounds the DBMS derived from its policy and declared
    speed; ``t`` an absolute time at or after the last update.  The
    interval is clamped to the route (the object cannot travel past the
    route's ends).
    """
    elapsed = attribute.elapsed(t)
    start_travel = route.travel_distance_of(
        attribute.start_point, attribute.direction
    )
    center = start_travel + attribute.speed * elapsed
    lower = center - bounds.slow(elapsed)
    upper = center + bounds.fast(elapsed)
    lower = min(max(lower, 0.0), route.length)
    upper = min(max(upper, 0.0), route.length)
    # The slow bound never exceeds v*t, so lower <= center; after route
    # clamping the order is preserved, but guard against float dust.
    if lower > upper:
        lower = upper
    return UncertaintyInterval(
        route_id=route.route_id,
        direction=attribute.direction,
        lower=lower,
        upper=upper,
    )


__all__ = [
    "UncertaintyInterval",
    "uncertainty_interval",
]
