"""DBMS-side deviation bounds — Propositions 2, 3, 4 and Corollary 1 (§3.3).

The DBMS cannot know the actual position of a moving object, but when
it knows the object's update policy it can bound the deviation using
only update-visible quantities: the declared speed ``v`` (``P.speed``),
the update cost ``C``, the object's maximum speed ``V``, and the time
``t`` since the last update.

For the **delayed-linear** policy:

* Proposition 2 (slow):  ``k <= min(sqrt(2 v C),        v t)``
* Proposition 3 (fast):  ``k <= min(sqrt(2 (V-v) C),    (V-v) t)``
* Corollary 1 (total):   ``k <= min(sqrt(2 D C),        D t)`` with
  ``D = max(v, V - v)`` — rises, then stays flat.

For the **immediate-linear** policies (ail and cil):

* Proposition 4: slow ``<= min(2C/t, v t)``, fast ``<= min(2C/t,
  (V-v) t)``, total ``<= min(2C/t, D t)`` — rises, peaks at
  ``t = sqrt(2C/D)``, then *decreases*: the paper's "surprising
  positive result".

Bounds for the baseline policies follow the same pattern from their
fixed thresholds (or, for the periodic policy, from physics alone).

The slow/fast split matters beyond tighter totals: the o-plane of §4
uses ``BS(t)`` and ``BF(t)`` separately to build the lower and upper
boundary lines ``l(t) = vt - BS(t)`` and ``u(t) = vt + BF(t)``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.baselines import (
    FixedThresholdPolicy,
    PeriodicPolicy,
    TraditionalPointPolicy,
)
from repro.core.policies import (
    AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy,
    DelayedLinearPolicy,
)
from repro.core.policy import UpdatePolicy
from repro.errors import PolicyError

BoundFunction = Callable[[float], float]


def _check_speeds(declared_speed: float, max_speed: float) -> None:
    if declared_speed < 0:
        raise PolicyError(
            f"declared speed must be nonnegative, got {declared_speed}"
        )
    if max_speed < 0:
        raise PolicyError(f"max speed must be nonnegative, got {max_speed}")


def _check_elapsed(t: float) -> None:
    if t < 0:
        raise PolicyError(f"elapsed time must be nonnegative, got {t}")


class DeviationBounds:
    """Slow/fast/total deviation bounds as functions of elapsed time.

    ``slow(t)`` bounds how far the actual position can trail the
    database position ``t`` time units after the last update; ``fast(t)``
    bounds how far it can lead; ``total(t)`` bounds the deviation
    regardless of direction and equals ``max(slow, fast)``.
    """

    __slots__ = ("_slow", "_fast", "policy_name")

    def __init__(self, slow: BoundFunction, fast: BoundFunction,
                 policy_name: str = "custom") -> None:
        self._slow = slow
        self._fast = fast
        self.policy_name = policy_name

    def slow(self, t: float) -> float:
        """Bound on the slow deviation at elapsed time ``t``."""
        _check_elapsed(t)
        return self._slow(t)

    def fast(self, t: float) -> float:
        """Bound on the fast deviation at elapsed time ``t``."""
        _check_elapsed(t)
        return self._fast(t)

    def total(self, t: float) -> float:
        """Bound on the deviation at elapsed time ``t`` (either direction)."""
        _check_elapsed(t)
        return max(self._slow(t), self._fast(t))

    def __repr__(self) -> str:
        return f"DeviationBounds(policy={self.policy_name!r})"


def delayed_linear_bounds(declared_speed: float, max_speed: float,
                          update_cost: float) -> DeviationBounds:
    """Bounds for the dl policy (Propositions 2–3, Corollary 1)."""
    _check_speeds(declared_speed, max_speed)
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    v = declared_speed
    gap = max(max_speed - declared_speed, 0.0)

    def slow(t: float) -> float:
        return min(math.sqrt(2.0 * v * update_cost), v * t)

    def fast(t: float) -> float:
        return min(math.sqrt(2.0 * gap * update_cost), gap * t)

    return DeviationBounds(slow, fast, policy_name="dl")


def immediate_linear_bounds(declared_speed: float, max_speed: float,
                            update_cost: float) -> DeviationBounds:
    """Bounds for the ail/cil policies (Proposition 4).

    At ``t = 0`` both bounds are zero (the update just reported the
    exact position); for ``t > 0`` they are capped by ``2C/t``, which
    eventually *decreases* with time.
    """
    _check_speeds(declared_speed, max_speed)
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    v = declared_speed
    gap = max(max_speed - declared_speed, 0.0)

    def threshold_cap(t: float) -> float:
        return float("inf") if t <= 0 else 2.0 * update_cost / t

    def slow(t: float) -> float:
        return min(threshold_cap(t), v * t)

    def fast(t: float) -> float:
        return min(threshold_cap(t), gap * t)

    return DeviationBounds(slow, fast, policy_name="immediate")


def fixed_threshold_bounds(declared_speed: float, max_speed: float,
                           bound: float) -> DeviationBounds:
    """Bounds for the a-priori fixed-threshold (dead-reckoning) policy.

    The deviation can never exceed the trigger ``bound`` (an update
    would have fired), nor what physics allows.
    """
    _check_speeds(declared_speed, max_speed)
    if bound <= 0:
        raise PolicyError(f"bound must be positive, got {bound}")
    v = declared_speed
    gap = max(max_speed - declared_speed, 0.0)

    def slow(t: float) -> float:
        return min(bound, v * t)

    def fast(t: float) -> float:
        return min(bound, gap * t)

    return DeviationBounds(slow, fast, policy_name="fixed-threshold")


def traditional_bounds(max_speed: float, precision: float) -> DeviationBounds:
    """Bounds for the traditional static-point baseline.

    The stored position never moves and the declared speed is zero, so
    the object can only be *ahead* of it — by at most the precision
    trigger, or what its maximum speed allows.
    """
    if max_speed < 0:
        raise PolicyError(f"max speed must be nonnegative, got {max_speed}")
    if precision <= 0:
        raise PolicyError(f"precision must be positive, got {precision}")

    def slow(t: float) -> float:
        return 0.0

    def fast(t: float) -> float:
        return min(precision, max_speed * t)

    return DeviationBounds(slow, fast, policy_name="traditional")


def periodic_bounds(declared_speed: float, max_speed: float) -> DeviationBounds:
    """Bounds for the periodic policy: physics only.

    A time-driven policy places no cap on the deviation between
    updates, so only the speed envelope constrains it.
    """
    _check_speeds(declared_speed, max_speed)
    v = declared_speed
    gap = max(max_speed - declared_speed, 0.0)
    return DeviationBounds(
        lambda t: v * t, lambda t: gap * t, policy_name="periodic"
    )


def horizon_cost_bounds(declared_speed: float, max_speed: float,
                        update_cost: float, horizon: float) -> DeviationBounds:
    """Bounds for :class:`~repro.core.horizon.HorizonCostPolicy` with the
    uniform cost function.

    Under uniform cost the horizon rule collapses to "update when
    ``k >= C / H``", so the deviation is capped at that trigger (plus
    physics), exactly like a fixed-threshold policy with bound C/H.
    """
    _check_speeds(declared_speed, max_speed)
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    if horizon <= 0:
        raise PolicyError(f"horizon must be positive, got {horizon}")
    trigger = update_cost / horizon
    if trigger <= 0:
        # Free updates: the deviation is pinned to zero.
        return DeviationBounds(lambda t: 0.0, lambda t: 0.0,
                               policy_name="horizon")
    bounds = fixed_threshold_bounds(declared_speed, max_speed, trigger)
    return DeviationBounds(bounds.slow, bounds.fast, policy_name="horizon")


def bounds_for_policy(policy: UpdatePolicy, declared_speed: float,
                      max_speed: float) -> DeviationBounds:
    """The DBMS-side bounds implied by a policy instance.

    This is the dispatch the DBMS performs from the ``P.policy``
    sub-attribute: knowing the policy (and its parameters, which the
    paper assumes are part of the policy designation) determines the
    bound functions.
    """
    if isinstance(policy, DelayedLinearPolicy):
        return delayed_linear_bounds(declared_speed, max_speed, policy.update_cost)
    if isinstance(policy, (AverageImmediateLinearPolicy,
                           CurrentImmediateLinearPolicy)):
        return immediate_linear_bounds(
            declared_speed, max_speed, policy.update_cost
        )
    if isinstance(policy, FixedThresholdPolicy):
        return fixed_threshold_bounds(declared_speed, max_speed, policy.bound)
    if isinstance(policy, TraditionalPointPolicy):
        return traditional_bounds(max_speed, policy.precision)
    if isinstance(policy, PeriodicPolicy):
        return periodic_bounds(declared_speed, max_speed)
    # Extension policies are imported lazily: repro.core.adaptive and
    # repro.core.horizon import this module's bound constructors, so a
    # top-level import here would be circular.
    from repro.core.adaptive import AdaptivePolicy
    from repro.core.horizon import HorizonCostPolicy

    if isinstance(policy, AdaptivePolicy):
        # Both delegates are immediate-linear policies with the same C,
        # so Proposition 4's bound applies regardless of the regime.
        return immediate_linear_bounds(
            declared_speed, max_speed, policy.update_cost
        )
    if isinstance(policy, HorizonCostPolicy):
        if policy.cost_function.name == "uniform":
            return horizon_cost_bounds(
                declared_speed, max_speed, policy.update_cost, policy.horizon
            )
        # Non-uniform cost functions place no usable cap on the
        # deviation between updates; only physics constrains it.
        return periodic_bounds(declared_speed, max_speed)
    raise PolicyError(
        f"no deviation bounds known for policy {policy.name!r}"
    )


def immediate_bound_peak(declared_speed: float, max_speed: float,
                         update_cost: float) -> tuple[float, float]:
    """Where Proposition 4's total bound peaks, and its peak value.

    The bound ``min(2C/t, D t)`` peaks where the branches cross:
    ``t* = sqrt(2C/D)``, with value ``sqrt(2 C D)``.  Returns
    ``(t*, peak)``; for ``D = 0`` the bound is identically zero and we
    return ``(0.0, 0.0)``.
    """
    _check_speeds(declared_speed, max_speed)
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    dominant = max(declared_speed, max(max_speed - declared_speed, 0.0))
    if dominant == 0 or update_cost == 0:
        return 0.0, 0.0
    t_star = math.sqrt(2.0 * update_cost / dominant)
    return t_star, math.sqrt(2.0 * update_cost * dominant)


__all__ = [
    "BoundFunction",
    "DeviationBounds",
    "bounds_for_policy",
    "delayed_linear_bounds",
    "fixed_threshold_bounds",
    "horizon_cost_bounds",
    "immediate_bound_peak",
    "immediate_linear_bounds",
    "periodic_bounds",
    "traditional_bounds",
]
