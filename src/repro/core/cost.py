"""Deviation cost functions and the total-cost decomposition (paper §3.1).

The paper postulates a cost per unit of deviation (imprecision) and a
cost ``C`` per update message, both in the same units.  Between two
consecutive updates at ``t1`` and ``t2`` the total cost is

    COST(t1, t2) = C + COST_d(t1, t2)                       (Equation 2)

where ``COST_d`` is a *deviation cost function*.  The paper analyses the
**uniform** deviation cost function

    COST_d(t1, t2) = integral from t1 to t2 of d(t) dt       (Equation 1)

(one query per time unit, one cost unit per mile of reported deviation)
and mentions the **step** function (zero below a tolerance ``h``, one
above) as an alternative.  Both are implemented here; all three paper
policies use the uniform function.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import PolicyError


class DeviationCostFunction(ABC):
    """Maps a deviation signal to an imprecision cost."""

    #: Short identifier used in policy descriptions and reports.
    name: str = "abstract"

    @abstractmethod
    def rate(self, deviation: float) -> float:
        """Instantaneous cost per time unit at the given deviation."""

    def integrate(self, deviations: Sequence[float], dt: float) -> float:
        """Cost of a sampled deviation signal over time.

        ``deviations[i]`` is the deviation during the ``i``-th tick of
        length ``dt``; the integral is the rectangle-rule sum, which is
        exact for the piecewise-constant signals the simulator produces.
        """
        if dt <= 0:
            raise PolicyError(f"dt must be positive, got {dt}")
        return sum(self.rate(d) for d in deviations) * dt

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformDeviationCost(DeviationCostFunction):
    """Equation 1: one cost unit per mile of deviation per time unit."""

    name = "uniform"

    def rate(self, deviation: float) -> float:
        if deviation < 0:
            raise PolicyError(f"deviation must be nonnegative, got {deviation}")
        return deviation


class StepDeviationCost(DeviationCostFunction):
    """Zero penalty while the deviation stays below ``threshold``, else one.

    The paper's step deviation cost function: "a zero penalty for each
    time unit in which the deviation stays below some threshold h, and a
    penalty of one otherwise".
    """

    name = "step"

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise PolicyError(f"step threshold must be nonnegative, got {threshold}")
        self.threshold = threshold

    def rate(self, deviation: float) -> float:
        if deviation < 0:
            raise PolicyError(f"deviation must be nonnegative, got {deviation}")
        return 0.0 if deviation <= self.threshold else 1.0

    def __repr__(self) -> str:
        return f"StepDeviationCost(threshold={self.threshold})"


def total_cost(update_cost: float, num_updates: int,
               deviation_cost: float) -> float:
    """Equation 2 summed over a whole trip.

    ``update_cost`` is ``C``; ``num_updates`` counts position-update
    messages sent during the trip; ``deviation_cost`` is the integrated
    deviation cost over the trip.
    """
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    if num_updates < 0:
        raise PolicyError(f"update count must be nonnegative, got {num_updates}")
    if deviation_cost < 0:
        raise PolicyError(
            f"deviation cost must be nonnegative, got {deviation_cost}"
        )
    return update_cost * num_updates + deviation_cost


__all__ = [
    "DeviationCostFunction",
    "StepDeviationCost",
    "UniformDeviationCost",
    "total_cost",
]
