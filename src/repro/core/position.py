"""The position attribute of §2 and its database-position semantics.

A mobile point object's position attribute has seven sub-attributes::

    P.starttime          time of the last position update
    P.route              (id of) the route the object moves along
    P.x.startposition    x of the object's position at P.starttime
    P.y.startposition    y of the object's position at P.starttime
    P.direction          binary travel direction along the route
    P.speed              declared speed (miles/minute)
    P.policy             name of the update policy in force

The *database position* at time ``t >= starttime`` is the point on the
route at route-distance ``speed * (t - starttime)`` from the start
position, in the travel direction.  This is the position the DBMS
returns for a query at time ``t`` — no update messages needed while the
object keeps (approximately) its declared speed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PolicyError, RouteError
from repro.geometry.point import Point
from repro.routes.route import Route


@dataclass(frozen=True, slots=True)
class PositionAttribute:
    """The seven sub-attributes of a mobile object's position (paper §2).

    Immutable: a position update replaces the whole attribute (see
    :meth:`updated`), which mirrors the paper's assumption that every
    update rewrites ``starttime``, the start position and ``speed``.
    """

    starttime: float
    route_id: str
    start_x: float
    start_y: float
    direction: int
    speed: float
    policy: str

    def __post_init__(self) -> None:
        if self.direction not in (0, 1):
            raise RouteError(f"direction must be 0 or 1, got {self.direction!r}")
        if self.speed < 0:
            raise PolicyError(f"declared speed must be nonnegative, got {self.speed}")

    @property
    def start_point(self) -> Point:
        """The position of the object at ``starttime``."""
        return Point(self.start_x, self.start_y)

    def elapsed(self, t: float) -> float:
        """Time units since the last update, at query time ``t``."""
        if t < self.starttime:
            raise PolicyError(
                f"query time {t} precedes last update at {self.starttime}"
            )
        return t - self.starttime

    def database_travel_offset(self, t: float) -> float:
        """Dead-reckoned route-distance travelled since ``starttime``."""
        return self.speed * self.elapsed(t)

    def database_position(self, route: Route, t: float) -> Point:
        """The database position at time ``t`` (paper §2).

        ``route`` must be the route this attribute references; the
        dead-reckoned travel distance is clamped to the route's end, so
        an object that reaches its destination simply stays there as far
        as the DBMS is concerned.
        """
        self._check_route(route)
        start_travel = route.travel_distance_of(self.start_point, self.direction)
        return route.travel_point(
            start_travel + self.database_travel_offset(t), self.direction
        )

    def database_travel_distance(self, route: Route, t: float) -> float:
        """Dead-reckoned travel distance from the route's travel origin."""
        self._check_route(route)
        start_travel = route.travel_distance_of(self.start_point, self.direction)
        return min(
            start_travel + self.database_travel_offset(t), route.length
        )

    def updated(self, t: float, position: Point, speed: float,
                route_id: str | None = None, direction: int | None = None,
                policy: str | None = None) -> "PositionAttribute":
        """The attribute after a position update at time ``t``.

        Only the components carried by the update message change; the
        paper allows an update to also switch route, direction or policy.
        """
        return replace(
            self,
            starttime=t,
            start_x=position.x,
            start_y=position.y,
            speed=speed,
            route_id=route_id if route_id is not None else self.route_id,
            direction=direction if direction is not None else self.direction,
            policy=policy if policy is not None else self.policy,
        )

    def _check_route(self, route: Route) -> None:
        if route.route_id != self.route_id:
            raise RouteError(
                f"position attribute references route {self.route_id!r} "
                f"but was given route {route.route_id!r}"
            )


__all__ = [
    "PositionAttribute",
]
