"""The paper's general cost-comparison decision procedure (§3.1).

Before specialising to closed-form thresholds, §3.1 defines the update
decision generically: approximate the deviation by the fitted estimator
``g``; predict the future deviation as ``g(t)`` if an update is sent
now and ``g(t) + k`` if not; and send the update when the difference
between the predicted deviation-costs exceeds the update cost:

    integral over the horizon of  rate(g(s) + k) - rate(g(s)) ds  >=  C

:class:`HorizonCostPolicy` implements exactly that, by numerical
integration, for *any* deviation cost function — including the step
function, for which no closed-form threshold is derived in the paper.
With the uniform cost function the integrand is constantly ``k``, so
the rule collapses to ``k >= C / H`` for horizon ``H``; a unit test
pins that equivalence.

This is the extension point the closed-form dl/ail/cil policies are
special cases of (they effectively choose the horizon that minimises
steady-state cost per time unit instead of fixing it).
"""

from __future__ import annotations

from repro.core.cost import DeviationCostFunction
from repro.core.fitting import SimpleFitting
from repro.core.policies import register_policy
from repro.core.policy import OnboardState, UpdateDecision, UpdatePolicy
from repro.core.speed import CurrentSpeed, SpeedPredictor
from repro.errors import PolicyError


@register_policy
class HorizonCostPolicy(UpdatePolicy):
    """Generic cost-comparison policy over a fixed prediction horizon.

    Parameters: the horizon length in minutes, the deviation cost
    function (any :class:`DeviationCostFunction`), whether the fitted
    estimator keeps its delay, the speed predictor, and the integration
    step.
    """

    name = "horizon"

    def __init__(self, update_cost: float,
                 horizon: float = 5.0,
                 use_delay: bool = False,
                 speed_predictor: SpeedPredictor | None = None,
                 cost_function: DeviationCostFunction | None = None,
                 integration_step: float = 1.0 / 60.0) -> None:
        super().__init__(update_cost, cost_function)
        if horizon <= 0:
            raise PolicyError(f"horizon must be positive, got {horizon}")
        if integration_step <= 0 or integration_step > horizon:
            raise PolicyError(
                f"integration step must be in (0, horizon], got "
                f"{integration_step}"
            )
        self.horizon = horizon
        self.fitting = SimpleFitting(use_delay=use_delay)
        self.speed_predictor = speed_predictor or CurrentSpeed()
        self.integration_step = integration_step

    def predicted_cost_difference(self, state: OnboardState) -> float:
        """Cost(no update) - Cost(update) over the horizon, ex message.

        Positive means skipping the update is predicted to cost more in
        imprecision; the update fires when this exceeds ``C``.
        """
        k = state.deviation
        if k <= 0:
            return 0.0
        estimator = self.fitting.fit(state)
        steps = max(int(round(self.horizon / self.integration_step)), 1)
        dt = self.horizon / steps
        difference = 0.0
        for i in range(steps):
            s = (i + 0.5) * dt
            base = estimator(s)
            difference += (
                self.cost_function.rate(base + k)
                - self.cost_function.rate(base)
            ) * dt
        return difference

    def decide(self, state: OnboardState) -> UpdateDecision:
        if state.deviation <= 0:
            return self._no_update(state)
        estimator = self.fitting.fit(state)
        difference = self.predicted_cost_difference(state)
        send = difference >= self.update_cost
        return UpdateDecision(
            send=send,
            speed_to_declare=(
                self.speed_predictor.predict(state)
                if send
                else state.declared_speed
            ),
            # For the uniform cost function the implied threshold is
            # C / H; report it for instrumentation parity.
            threshold=self.update_cost / self.horizon,
            fitted_slope=estimator.slope,
            fitted_delay=estimator.delay,
        )

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["horizon"] = self.horizon
        description["estimator"] = (
            "delayed-linear" if self.fitting.use_delay else "immediate-linear"
        )
        description["predicted_speed"] = self.speed_predictor.name
        return description


__all__ = [
    "HorizonCostPolicy",
]
