"""Serialisation of policies and cost functions to plain dict specs.

The ``P.policy`` sub-attribute names the policy *including its
parameters* — the DBMS needs them to derive deviation bounds, and a
persisted database needs them to reconstruct the policy objects.  A
*spec* is a JSON-compatible dict with a ``name`` key plus the
constructor parameters; :func:`policy_to_spec` and
:func:`policy_from_spec` round-trip every built-in policy.
"""

from __future__ import annotations

from typing import Any

from repro.core.adaptive import AdaptivePolicy
from repro.core.baselines import (
    FixedThresholdPolicy,
    PeriodicPolicy,
    TraditionalPointPolicy,
)
from repro.core.cost import (
    DeviationCostFunction,
    StepDeviationCost,
    UniformDeviationCost,
)
from repro.core.horizon import HorizonCostPolicy
from repro.core.policies import (
    AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy,
    DelayedLinearPolicy,
)
from repro.core.policy import UpdatePolicy
from repro.errors import PolicyError


def cost_function_to_spec(cost_function: DeviationCostFunction) -> dict[str, Any]:
    """A deviation cost function as a plain dict."""
    if isinstance(cost_function, StepDeviationCost):
        return {"name": "step", "threshold": cost_function.threshold}
    if isinstance(cost_function, UniformDeviationCost):
        return {"name": "uniform"}
    raise PolicyError(
        f"cannot serialise cost function {cost_function!r}"
    )


def cost_function_from_spec(spec: dict[str, Any]) -> DeviationCostFunction:
    """Rebuild a deviation cost function from its spec."""
    name = spec.get("name")
    if name == "uniform":
        return UniformDeviationCost()
    if name == "step":
        return StepDeviationCost(threshold=float(spec["threshold"]))
    raise PolicyError(f"unknown cost function spec {spec!r}")


def policy_to_spec(policy: UpdatePolicy) -> dict[str, Any]:
    """A policy instance as a plain dict (name + parameters)."""
    spec: dict[str, Any] = {
        "name": policy.name,
        "update_cost": policy.update_cost,
        "cost_function": cost_function_to_spec(policy.cost_function),
    }
    if isinstance(policy, TraditionalPointPolicy):
        spec["precision"] = policy.precision
    elif isinstance(policy, FixedThresholdPolicy):
        spec["bound"] = policy.bound
    elif isinstance(policy, PeriodicPolicy):
        spec["period"] = policy.period
    elif isinstance(policy, AdaptivePolicy):
        spec["volatility_threshold"] = policy.volatility_threshold
        spec["window_minutes"] = policy.window_minutes
        spec["hysteresis"] = policy.hysteresis
    elif isinstance(policy, HorizonCostPolicy):
        spec["horizon"] = policy.horizon
        spec["use_delay"] = policy.fitting.use_delay
    elif isinstance(policy, (DelayedLinearPolicy,
                             AverageImmediateLinearPolicy,
                             CurrentImmediateLinearPolicy)):
        pass  # only the update cost parameterises the paper's policies
    else:
        raise PolicyError(f"cannot serialise policy {policy!r}")
    return spec


def policy_from_spec(spec: dict[str, Any]) -> UpdatePolicy:
    """Rebuild a policy instance from its spec."""
    spec = dict(spec)
    name = spec.pop("name", None)
    update_cost = float(spec.pop("update_cost"))
    cost_spec = spec.pop("cost_function", {"name": "uniform"})
    cost_function = cost_function_from_spec(cost_spec)
    constructors: dict[str, Any] = {
        "dl": DelayedLinearPolicy,
        "ail": AverageImmediateLinearPolicy,
        "cil": CurrentImmediateLinearPolicy,
        "traditional": TraditionalPointPolicy,
        "fixed-threshold": FixedThresholdPolicy,
        "periodic": PeriodicPolicy,
        "adaptive": AdaptivePolicy,
        "horizon": HorizonCostPolicy,
    }
    constructor = constructors.get(name)
    if constructor is None:
        raise PolicyError(f"unknown policy spec name {name!r}")
    return constructor(update_cost, cost_function=cost_function, **spec)


__all__ = [
    "cost_function_from_spec",
    "cost_function_to_spec",
    "policy_from_spec",
    "policy_to_spec",
]
