"""Fitting methods (paper §3.1–3.2).

A fitting method determines the coefficients of the estimator function
from the observed deviation.  The paper's **simple fitting method**:

* the delay ``b`` is the time from the last update until the last
  instant the deviation was zero;
* the slope ``a`` is the ratio between the current deviation ``k`` and
  ``t - b``, where ``t`` is the time elapsed since the last update.

For immediate-linear estimators the delay is forced to zero, so the
slope becomes ``k / t`` — which makes the update condition
``k >= sqrt(2 a C)`` collapse to ``k >= 2C / t`` (Equation 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.estimators import DelayedLinearEstimator, Estimator
from repro.core.policy import OnboardState
from repro.errors import PolicyError


class FittingMethod(ABC):
    """Derives estimator coefficients from the onboard state."""

    @abstractmethod
    def fit(self, state: OnboardState) -> Estimator:
        """Fit an estimator to the current deviation history."""


class SimpleFitting(FittingMethod):
    """The paper's simple fitting method.

    ``use_delay=True`` fits a delayed-linear estimator (for the dl
    policy); ``use_delay=False`` forces ``b = 0`` and fits an
    immediate-linear estimator (for the ail/cil policies).
    """

    def __init__(self, use_delay: bool = True) -> None:
        self.use_delay = use_delay

    def fit(self, state: OnboardState) -> DelayedLinearEstimator:
        """Fit ``a`` and ``b`` from the current deviation.

        Requires a positive current deviation: the paper's policies do
        not even consider an update while the deviation is zero, so the
        fit is only ever invoked with ``k > 0`` (which also guarantees
        ``t - b > 0``).
        """
        k = state.deviation
        if k <= 0:
            raise PolicyError("simple fitting requires a positive deviation")
        delay = state.elapsed_at_last_zero_deviation if self.use_delay else 0.0
        effective = state.elapsed - delay
        if effective <= 0:
            # Numerically the deviation became positive within the same
            # tick that recorded zero deviation; treat the ramp as having
            # started an instant ago to keep the slope finite but large.
            effective = 1e-9
        return DelayedLinearEstimator(slope=k / effective, delay=delay)

    def __repr__(self) -> str:
        return f"SimpleFitting(use_delay={self.use_delay})"


__all__ = [
    "FittingMethod",
    "SimpleFitting",
]
