"""The paper's primary contribution: cost-based position-update policies.

This package implements §2 and §3 of Wolfson et al. (ICDE 1998):

* :mod:`repro.core.position` — the seven-sub-attribute position
  attribute and its dead-reckoned database-position semantics,
* :mod:`repro.core.cost` — deviation cost functions (uniform, step) and
  the total-cost decomposition of Equation 2,
* :mod:`repro.core.estimators` / :mod:`repro.core.fitting` — the
  delayed-linear and immediate-linear estimator functions and the simple
  fitting method,
* :mod:`repro.core.speed` — predicted-speed strategies,
* :mod:`repro.core.thresholds` — Proposition 1's optimal update
  threshold and the per-cycle cost algebra behind it,
* :mod:`repro.core.policy` / :mod:`repro.core.policies` — the update
  policy quintuple and the paper's three policies (dl, ail, cil),
* :mod:`repro.core.baselines` — the traditional non-temporal baseline,
  a-priori fixed-threshold dead reckoning, and periodic updating,
* :mod:`repro.core.bounds` — the DBMS-side deviation bounds of
  Propositions 2–4 and Corollary 1,
* :mod:`repro.core.uncertainty` — uncertainty intervals ``[l(t), u(t)]``.
"""

from repro.core.adaptive import AdaptivePolicy
from repro.core.baselines import (
    FixedThresholdPolicy,
    PeriodicPolicy,
    TraditionalPointPolicy,
)
from repro.core.horizon import HorizonCostPolicy
from repro.core.bounds import (
    DeviationBounds,
    delayed_linear_bounds,
    immediate_linear_bounds,
)
from repro.core.cost import (
    DeviationCostFunction,
    StepDeviationCost,
    UniformDeviationCost,
    total_cost,
)
from repro.core.estimators import (
    DelayedLinearEstimator,
    Estimator,
    ImmediateLinearEstimator,
)
from repro.core.fitting import FittingMethod, SimpleFitting
from repro.core.policies import (
    AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy,
    DelayedLinearPolicy,
    make_policy,
)
from repro.core.policy import OnboardState, UpdateDecision, UpdatePolicy
from repro.core.position import PositionAttribute
from repro.core.speed import (
    AverageSpeedSinceUpdate,
    CurrentSpeed,
    SpeedPredictor,
    TripAverageSpeed,
)
from repro.core.thresholds import (
    cost_per_time_unit,
    cycle_deviation_cost,
    cycle_period,
    optimal_update_threshold,
)
from repro.core.uncertainty import UncertaintyInterval

__all__ = [
    "AdaptivePolicy",
    "HorizonCostPolicy",
    "PositionAttribute",
    "DeviationCostFunction",
    "UniformDeviationCost",
    "StepDeviationCost",
    "total_cost",
    "Estimator",
    "DelayedLinearEstimator",
    "ImmediateLinearEstimator",
    "FittingMethod",
    "SimpleFitting",
    "SpeedPredictor",
    "CurrentSpeed",
    "AverageSpeedSinceUpdate",
    "TripAverageSpeed",
    "optimal_update_threshold",
    "cycle_period",
    "cycle_deviation_cost",
    "cost_per_time_unit",
    "OnboardState",
    "UpdateDecision",
    "UpdatePolicy",
    "DelayedLinearPolicy",
    "AverageImmediateLinearPolicy",
    "CurrentImmediateLinearPolicy",
    "make_policy",
    "TraditionalPointPolicy",
    "FixedThresholdPolicy",
    "PeriodicPolicy",
    "DeviationBounds",
    "delayed_linear_bounds",
    "immediate_linear_bounds",
    "UncertaintyInterval",
]
