"""Optimal update thresholds — Proposition 1 and its cost algebra.

Setting: following each update the deviation is a delayed-linear
function with delay ``b`` and slope ``a``; the update cost is ``C``; the
deviation cost function is uniform (Equation 1).  If the object updates
whenever the deviation reaches a threshold ``k``, each update-to-update
cycle lasts ``b + k/a`` time units and accrues deviation cost equal to
the area of a triangle of base ``k/a`` and height ``k``:

    cycle_period(k)          = b + k / a
    cycle_deviation_cost(k)  = k^2 / (2 a)
    cost_per_time_unit(k)    = (C + k^2 / (2a)) / (b + k / a)

Minimising the last expression over ``k`` gives **Proposition 1**:

    k_opt = sqrt(a^2 b^2 + 2 a C) - a b

For ``b = 0`` this is ``sqrt(2 a C)``, and with the simple fitting
method's ``a = k / t`` the update condition ``k >= sqrt(2 a C)`` is
equivalent to ``k >= 2 C / t`` (**Equation 3**).
"""

from __future__ import annotations

import math

from repro.errors import PolicyError


def _check_params(slope: float, delay: float, update_cost: float) -> None:
    if slope < 0:
        raise PolicyError(f"slope must be nonnegative, got {slope}")
    if delay < 0:
        raise PolicyError(f"delay must be nonnegative, got {delay}")
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")


def optimal_update_threshold(slope: float, delay: float,
                             update_cost: float) -> float:
    """Proposition 1: ``k_opt = sqrt(a^2 b^2 + 2 a C) - a b``.

    A zero slope means the deviation never grows, so no finite threshold
    is ever reached; we return ``inf`` in that case, which makes the
    policies simply never fire.
    """
    _check_params(slope, delay, update_cost)
    if slope == 0:
        return float("inf")
    ab = slope * delay
    return math.sqrt(ab * ab + 2.0 * slope * update_cost) - ab


def immediate_threshold_from_elapsed(update_cost: float, elapsed: float) -> float:
    """Equation 3: with simple fitting, ``k_opt = 2 C / t``.

    ``elapsed`` is the time since the last update; must be positive
    (with zero elapsed time the deviation is necessarily zero and the
    policies do not consider updating).
    """
    if update_cost < 0:
        raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
    if elapsed <= 0:
        raise PolicyError(f"elapsed must be positive, got {elapsed}")
    return 2.0 * update_cost / elapsed


def cycle_period(threshold: float, slope: float, delay: float) -> float:
    """Length of one update-to-update cycle: ``b + k / a``."""
    _check_params(slope, delay, 0.0)
    if threshold < 0:
        raise PolicyError(f"threshold must be nonnegative, got {threshold}")
    if slope == 0:
        return float("inf")
    return delay + threshold / slope


def cycle_deviation_cost(threshold: float, slope: float) -> float:
    """Uniform deviation cost accrued in one cycle: ``k^2 / (2a)``.

    The deviation ramps linearly from 0 to ``k`` over ``k/a`` time
    units, so the integral is the triangle area.
    """
    if threshold < 0:
        raise PolicyError(f"threshold must be nonnegative, got {threshold}")
    if slope < 0:
        raise PolicyError(f"slope must be nonnegative, got {slope}")
    if slope == 0:
        return 0.0
    return threshold * threshold / (2.0 * slope)


def cost_per_time_unit(threshold: float, slope: float, delay: float,
                       update_cost: float) -> float:
    """Steady-state total cost per time unit when updating at ``threshold``.

    This is the objective Proposition 1 minimises:
    ``(C + k^2/(2a)) / (b + k/a)``.
    """
    _check_params(slope, delay, update_cost)
    period = cycle_period(threshold, slope, delay)
    if math.isinf(period):
        return 0.0
    if period <= 0:
        raise PolicyError("cycle period must be positive")
    return (update_cost + cycle_deviation_cost(threshold, slope)) / period


__all__ = [
    "cost_per_time_unit",
    "cycle_deviation_cost",
    "cycle_period",
    "immediate_threshold_from_elapsed",
    "optimal_update_threshold",
]
