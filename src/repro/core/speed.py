"""Predicted-speed strategies (paper §3.1).

The predicted speed is the value stored in ``P.speed`` at each update —
the speed the DBMS will dead-reckon with until the next update.  The
paper names three backward-looking choices (current speed, average
speed since the last update, average speed since trip start) and notes
that forward-looking predictions from known traffic patterns are also
possible; :class:`BlendedSpeed` provides a simple such extension.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.policy import OnboardState
from repro.errors import PolicyError


class SpeedPredictor(ABC):
    """Chooses the speed to declare in a position update."""

    name: str = "abstract"

    @abstractmethod
    def predict(self, state: OnboardState) -> float:
        """The speed to store in ``P.speed``; must be nonnegative."""


class CurrentSpeed(SpeedPredictor):
    """Declare the instantaneous speed (used by dl and cil).

    Appropriate for highway driving outside rush hour, where the speed
    fluctuates only mildly (paper §3.1).
    """

    name = "current"

    def predict(self, state: OnboardState) -> float:
        return max(state.current_speed, 0.0)


class AverageSpeedSinceUpdate(SpeedPredictor):
    """Declare the average speed since the last update (used by ail).

    Appropriate for stop-and-go city driving, where the instantaneous
    speed changes rapidly but the average is stable (paper §3.2).
    """

    name = "average-since-update"

    def predict(self, state: OnboardState) -> float:
        return max(state.average_speed_since_update, 0.0)


class TripAverageSpeed(SpeedPredictor):
    """Declare the average speed since the beginning of the trip."""

    name = "trip-average"

    def predict(self, state: OnboardState) -> float:
        return max(state.trip_average_speed, 0.0)


class BlendedSpeed(SpeedPredictor):
    """A convex blend of current and average-since-update speed.

    ``weight = 1`` reduces to :class:`CurrentSpeed`; ``weight = 0`` to
    :class:`AverageSpeedSinceUpdate`.  This is the simplest instance of
    the paper's observation that the predicted speed may incorporate
    knowledge beyond the raw past (here: smoothing out instantaneous
    noise without fully committing to the average).
    """

    name = "blended"

    def __init__(self, weight: float) -> None:
        if not 0.0 <= weight <= 1.0:
            raise PolicyError(f"blend weight must be in [0, 1], got {weight}")
        self.weight = weight

    def predict(self, state: OnboardState) -> float:
        blended = (
            self.weight * state.current_speed
            + (1.0 - self.weight) * state.average_speed_since_update
        )
        return max(blended, 0.0)

    def __repr__(self) -> str:
        return f"BlendedSpeed(weight={self.weight})"


__all__ = [
    "AverageSpeedSinceUpdate",
    "BlendedSpeed",
    "CurrentSpeed",
    "SpeedPredictor",
    "TripAverageSpeed",
]
