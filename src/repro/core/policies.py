"""The paper's three update policies: dl, ail, and cil (§3.2, §3.4).

All three share the uniform deviation cost function, the update cost
``C``, and the simple fitting method; they differ in estimator and
predicted speed:

===========  ====================  ==========================  =================
policy       estimator             threshold                   predicted speed
===========  ====================  ==========================  =================
``dl``       delayed-linear        ``sqrt(a^2 b^2 + 2aC)-ab``  current speed
``ail``      immediate-linear      ``sqrt(2aC)`` = ``2C/t``    average speed
``cil``      immediate-linear      ``sqrt(2aC)`` = ``2C/t``    current speed
===========  ====================  ==========================  =================

Each policy, at every instant: computes the current deviation ``k``;
does nothing when ``k = 0``; otherwise fits the estimator, computes the
optimal threshold of Proposition 1, and sends an update (with the
policy's predicted speed) when ``k`` has reached the threshold.
"""

from __future__ import annotations

from repro.core.cost import DeviationCostFunction
from repro.core.fitting import SimpleFitting
from repro.core.policy import (
    THRESHOLD_TOLERANCE,
    OnboardState,
    UpdateDecision,
    UpdatePolicy,
)
from repro.core.speed import AverageSpeedSinceUpdate, CurrentSpeed, SpeedPredictor
from repro.core.thresholds import optimal_update_threshold
from repro.errors import PolicyError


class _CostBasedLinearPolicy(UpdatePolicy):
    """Shared decision logic of the dl/ail/cil family.

    Subclasses fix the fitting method (with or without delay) and the
    speed predictor; the decision procedure is the paper's: fit, derive
    the Proposition-1 threshold, compare.
    """

    def __init__(self, update_cost: float,
                 fitting: SimpleFitting,
                 speed_predictor: SpeedPredictor,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(update_cost, cost_function)
        self.fitting = fitting
        self.speed_predictor = speed_predictor

    def decide(self, state: OnboardState) -> UpdateDecision:
        k = state.deviation
        if k <= 0:
            return self._no_update(state)
        estimator = self.fitting.fit(state)
        threshold = optimal_update_threshold(
            estimator.slope, estimator.delay, self.update_cost
        )
        send = k >= threshold * (1.0 - THRESHOLD_TOLERANCE)
        return UpdateDecision(
            send=send,
            speed_to_declare=(
                self.speed_predictor.predict(state)
                if send
                else state.declared_speed
            ),
            threshold=threshold,
            fitted_slope=estimator.slope,
            fitted_delay=estimator.delay,
        )

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["estimator"] = (
            "delayed-linear" if self.fitting.use_delay else "immediate-linear"
        )
        description["fitting_method"] = "simple"
        description["predicted_speed"] = self.speed_predictor.name
        return description


class DelayedLinearPolicy(_CostBasedLinearPolicy):
    """The **dl** policy: (uniform cost, C, delayed-linear, simple, current).

    Updates when the deviation reaches
    ``k_opt = sqrt(a^2 b^2 + 2 a C) - a b`` with the simple fitting
    method's ``b`` (time until the deviation last was zero) and
    ``a = k / (t - b)``; declares the current speed.
    """

    name = "dl"

    def __init__(self, update_cost: float,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(
            update_cost,
            fitting=SimpleFitting(use_delay=True),
            speed_predictor=CurrentSpeed(),
            cost_function=cost_function,
        )


class AverageImmediateLinearPolicy(_CostBasedLinearPolicy):
    """The **ail** policy: (uniform cost, C, immediate-linear, simple, average).

    Updates when ``k >= sqrt(2 a C)`` with ``a = k / t`` — equivalently
    when ``k >= 2 C / t`` (Equation 3) — and declares the average speed
    since the last update.
    """

    name = "ail"

    def __init__(self, update_cost: float,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(
            update_cost,
            fitting=SimpleFitting(use_delay=False),
            speed_predictor=AverageSpeedSinceUpdate(),
            cost_function=cost_function,
        )


class CurrentImmediateLinearPolicy(_CostBasedLinearPolicy):
    """The **cil** policy: (uniform cost, C, immediate-linear, simple, current).

    Identical to ail except that the declared speed is the current
    rather than the average speed (§3.4).
    """

    name = "cil"

    def __init__(self, update_cost: float,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(
            update_cost,
            fitting=SimpleFitting(use_delay=False),
            speed_predictor=CurrentSpeed(),
            cost_function=cost_function,
        )


#: Registry of the paper's policies by name; extended by the baselines
#: module at import time through :func:`register_policy`.
_POLICY_REGISTRY: dict[str, type[UpdatePolicy]] = {
    DelayedLinearPolicy.name: DelayedLinearPolicy,
    AverageImmediateLinearPolicy.name: AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy.name: CurrentImmediateLinearPolicy,
}


def register_policy(policy_class: type[UpdatePolicy]) -> type[UpdatePolicy]:
    """Register a policy class under its ``name`` (usable as a decorator)."""
    name = policy_class.name
    if not name or name == "abstract":
        raise PolicyError(f"policy class {policy_class!r} needs a concrete name")
    _POLICY_REGISTRY[name] = policy_class
    return policy_class


def policy_names() -> list[str]:
    """Names of all registered policies."""
    return sorted(_POLICY_REGISTRY)


def make_policy(name: str, update_cost: float, **kwargs: object) -> UpdatePolicy:
    """Instantiate a registered policy by name.

    The paper's policies (``dl``, ``ail``, ``cil``) take only the update
    cost; baselines may take extra keyword arguments (e.g. a threshold).
    """
    try:
        policy_class = _POLICY_REGISTRY[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; known: {policy_names()}"
        ) from None
    return policy_class(update_cost, **kwargs)  # type: ignore[arg-type]


__all__ = [
    "AverageImmediateLinearPolicy",
    "CurrentImmediateLinearPolicy",
    "DelayedLinearPolicy",
    "make_policy",
    "policy_names",
    "register_policy",
]
