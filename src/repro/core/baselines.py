"""Baseline update policies the paper compares against or mentions.

* :class:`TraditionalPointPolicy` — the *traditional, non-temporal*
  method of the introduction: the DBMS stores a static point, so the
  reported position goes stale as soon as the object moves.  To honour
  a precision target the object must update whenever the distance from
  the stored point reaches the target.  The headline claim is that the
  temporal method needs only ~15 % of this baseline's messages.
* :class:`FixedThresholdPolicy` — the "alternative approach" of the
  conclusion: an a-priori deviation bound ``B``, updating whenever the
  deviation exceeds ``B``, with ``B`` chosen independently of the
  message cost (the paper's criticism of plain dead reckoning).
* :class:`PeriodicPolicy` — time-driven updating every ``period``
  minutes, the naive strawman for any tracking system.
"""

from __future__ import annotations

from repro.core.cost import DeviationCostFunction
from repro.core.policies import register_policy
from repro.core.policy import (
    THRESHOLD_TOLERANCE,
    OnboardState,
    UpdateDecision,
    UpdatePolicy,
)
from repro.core.speed import CurrentSpeed, SpeedPredictor
from repro.errors import PolicyError


@register_policy
class TraditionalPointPolicy(UpdatePolicy):
    """Non-temporal baseline: static point storage, distance-triggered.

    The declared speed is always zero (a traditional DBMS has no speed
    column — data is "constant unless explicitly modified"), so the
    database position stays where the last update put it and the
    deviation equals the distance travelled since that update.  The
    object updates whenever that distance reaches ``precision``.
    """

    name = "traditional"

    def __init__(self, update_cost: float, precision: float = 1.0,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(update_cost, cost_function)
        if precision <= 0:
            raise PolicyError(f"precision must be positive, got {precision}")
        self.precision = precision

    def decide(self, state: OnboardState) -> UpdateDecision:
        send = (
            state.distance_since_update
            >= self.precision * (1.0 - THRESHOLD_TOLERANCE)
        )
        return UpdateDecision(
            send=send,
            speed_to_declare=0.0,
            threshold=self.precision,
            fitted_slope=0.0,
            fitted_delay=0.0,
        )

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["precision"] = self.precision
        description["predicted_speed"] = "zero (static point storage)"
        return description


@register_policy
class FixedThresholdPolicy(UpdatePolicy):
    """A-priori dead reckoning: update when the deviation exceeds ``bound``.

    Unlike the cost-based policies, ``bound`` is fixed up front and does
    not adapt to the update cost or the observed deviation dynamics —
    exactly the approach the paper's conclusion argues against.  The
    declared speed comes from a configurable predictor (current speed by
    default, matching conventional dead reckoning).
    """

    name = "fixed-threshold"

    def __init__(self, update_cost: float, bound: float = 1.0,
                 speed_predictor: SpeedPredictor | None = None,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(update_cost, cost_function)
        if bound <= 0:
            raise PolicyError(f"bound must be positive, got {bound}")
        self.bound = bound
        self.speed_predictor = speed_predictor or CurrentSpeed()

    def decide(self, state: OnboardState) -> UpdateDecision:
        send = state.deviation >= self.bound * (1.0 - THRESHOLD_TOLERANCE)
        return UpdateDecision(
            send=send,
            speed_to_declare=(
                self.speed_predictor.predict(state)
                if send
                else state.declared_speed
            ),
            threshold=self.bound,
            fitted_slope=0.0,
            fitted_delay=0.0,
        )

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["bound"] = self.bound
        description["predicted_speed"] = self.speed_predictor.name
        return description


@register_policy
class PeriodicPolicy(UpdatePolicy):
    """Time-driven baseline: update every ``period`` minutes."""

    name = "periodic"

    def __init__(self, update_cost: float, period: float = 1.0,
                 speed_predictor: SpeedPredictor | None = None,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(update_cost, cost_function)
        if period <= 0:
            raise PolicyError(f"period must be positive, got {period}")
        self.period = period
        self.speed_predictor = speed_predictor or CurrentSpeed()

    def decide(self, state: OnboardState) -> UpdateDecision:
        send = state.elapsed >= self.period * (1.0 - THRESHOLD_TOLERANCE)
        return UpdateDecision(
            send=send,
            speed_to_declare=(
                self.speed_predictor.predict(state)
                if send
                else state.declared_speed
            ),
            threshold=float("inf"),
            fitted_slope=0.0,
            fitted_delay=0.0,
        )

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["period"] = self.period
        description["predicted_speed"] = self.speed_predictor.name
        return description


__all__ = [
    "FixedThresholdPolicy",
    "PeriodicPolicy",
    "TraditionalPointPolicy",
]
