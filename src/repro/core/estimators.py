"""Estimator functions (paper §3.1–3.2).

An estimator is a "well-behaved" function ``f(t)`` with ``f(0) = 0``
used to approximate the deviation as a function of time since the last
update.  The paper uses two:

* the **delayed-linear** function ``f(t) = a * (t - b)`` for ``t >= b``
  and ``0`` before — the object keeps its declared speed for ``b`` time
  units, then diverges at rate ``a``;
* the **immediate-linear** function, the special case ``b = 0``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import PolicyError


class Estimator(ABC):
    """A deviation-estimator function of time since the last update."""

    @abstractmethod
    def __call__(self, t: float) -> float:
        """Estimated deviation ``t`` time units after the last update."""

    def predicted_deviation(self, t: float, current_deviation: float,
                            send_update: bool) -> float:
        """The paper's two-branch prediction (§3.1).

        ``t`` time units from *now*, the deviation is predicted to be
        ``f(t)`` if an update is sent now (deviation resets to zero), or
        ``f(t) + k`` if not, where ``k`` is the current deviation.
        """
        base = self(t)
        return base if send_update else base + current_deviation


class DelayedLinearEstimator(Estimator):
    """``f(t) = a * (t - b)`` for ``t >= b``, else 0 (paper §3.2)."""

    def __init__(self, slope: float, delay: float) -> None:
        if slope < 0:
            raise PolicyError(f"estimator slope must be nonnegative, got {slope}")
        if delay < 0:
            raise PolicyError(f"estimator delay must be nonnegative, got {delay}")
        self.slope = slope
        self.delay = delay

    def __call__(self, t: float) -> float:
        if t < 0:
            raise PolicyError(f"estimator evaluated at negative time {t}")
        if t < self.delay:
            return 0.0
        return self.slope * (t - self.delay)

    def __repr__(self) -> str:
        return f"DelayedLinearEstimator(slope={self.slope}, delay={self.delay})"


class ImmediateLinearEstimator(DelayedLinearEstimator):
    """``f(t) = a * t`` — the delayed-linear function with zero delay."""

    def __init__(self, slope: float) -> None:
        super().__init__(slope, 0.0)

    def __repr__(self) -> str:
        return f"ImmediateLinearEstimator(slope={self.slope})"


__all__ = [
    "DelayedLinearEstimator",
    "Estimator",
    "ImmediateLinearEstimator",
]
