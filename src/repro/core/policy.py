"""The update-policy abstraction (paper §3.1).

A *position-update policy* is a quintuple (deviation cost function,
update cost, estimator function, fitting method, predicted speed).  At
every point in time the moving object's onboard computer evaluates the
policy against its current :class:`OnboardState` and gets back an
:class:`UpdateDecision` saying whether to send a position update and,
if so, which speed to declare.

The onboard state is everything the paper says the object knows: its
exact current position (hence the current deviation), the parameters of
the last update, and its own speed history.  The DBMS never sees this
state — it only sees update messages — which is why the bounds of
§3.3 (:mod:`repro.core.bounds`) are computed from update-visible
quantities only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.cost import DeviationCostFunction, UniformDeviationCost
from repro.errors import PolicyError

#: Relative slack applied when comparing the deviation to a threshold,
#: so that discrete-time simulations fire on the tick where the
#: deviation first reaches the threshold despite float rounding.
THRESHOLD_TOLERANCE = 1e-12


@dataclass(frozen=True, slots=True)
class OnboardState:
    """Everything the onboard computer knows when evaluating a policy.

    All times are in minutes since the last position update, except
    ``trip_elapsed`` (minutes since trip start).  Distances are miles,
    speeds miles/minute.
    """

    #: Time since the last position update (the paper's ``t``).
    elapsed: float
    #: Current deviation: route-distance between the actual position and
    #: the database position (the paper's ``k``); always >= 0.
    deviation: float
    #: Route-distance actually travelled since the last update.  Used by
    #: the traditional (non-temporal) baseline, whose stored position is
    #: a static point.
    distance_since_update: float
    #: ``elapsed`` at the most recent instant the deviation was zero.
    #: This is the simple fitting method's delay ``b``.
    elapsed_at_last_zero_deviation: float
    #: The object's current (instantaneous) speed.
    current_speed: float
    #: Average speed since the last update.
    average_speed_since_update: float
    #: Average speed since the start of the trip.
    trip_average_speed: float
    #: The speed currently declared in the database (``P.speed``).
    declared_speed: float
    #: Time since the start of the trip.
    trip_elapsed: float

    def __post_init__(self) -> None:
        if self.elapsed < 0:
            raise PolicyError(f"elapsed must be nonnegative, got {self.elapsed}")
        if self.deviation < 0:
            raise PolicyError(f"deviation must be nonnegative, got {self.deviation}")
        if not 0 <= self.elapsed_at_last_zero_deviation <= self.elapsed + 1e-9:
            raise PolicyError(
                "elapsed_at_last_zero_deviation must lie in [0, elapsed]; got "
                f"{self.elapsed_at_last_zero_deviation} with elapsed {self.elapsed}"
            )


@dataclass(frozen=True, slots=True)
class UpdateDecision:
    """The outcome of evaluating a policy at one instant.

    ``send`` says whether to transmit a position update now.  When an
    update is sent, ``speed_to_declare`` is the value for ``P.speed``.
    The fitted estimator parameters and the threshold are carried along
    for instrumentation (the experiment harness records them).
    """

    send: bool
    speed_to_declare: float
    threshold: float
    fitted_slope: float
    fitted_delay: float


class UpdatePolicy(ABC):
    """Base class for position-update policies.

    Concrete policies supply the estimator + fitting combination via
    :meth:`decide` and the predicted speed via their speed predictor.
    The deviation cost function and the update cost ``C`` are common to
    the quintuple and held here.
    """

    #: Policy identifier stored in the ``P.policy`` sub-attribute.
    name: str = "abstract"

    def __init__(self, update_cost: float,
                 cost_function: DeviationCostFunction | None = None) -> None:
        if update_cost < 0:
            raise PolicyError(f"update cost must be nonnegative, got {update_cost}")
        self.update_cost = update_cost
        self.cost_function = cost_function or UniformDeviationCost()

    @abstractmethod
    def decide(self, state: OnboardState) -> UpdateDecision:
        """Evaluate the policy at one instant of onboard state."""

    def describe(self) -> dict[str, object]:
        """The policy quintuple as a plain dict (for reports and logs)."""
        return {
            "name": self.name,
            "deviation_cost_function": self.cost_function.name,
            "update_cost": self.update_cost,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(update_cost={self.update_cost})"

    @staticmethod
    def _no_update(state: OnboardState, threshold: float = float("inf"),
                   slope: float = 0.0, delay: float = 0.0) -> UpdateDecision:
        """A convenience "do nothing" decision."""
        return UpdateDecision(
            send=False,
            speed_to_declare=state.declared_speed,
            threshold=threshold,
            fitted_slope=slope,
            fitted_delay=delay,
        )


__all__ = [
    "OnboardState",
    "THRESHOLD_TOLERANCE",
    "UpdateDecision",
    "UpdatePolicy",
]
