"""Adaptive policy switching (paper §3.1's discussion, implemented).

"One reason to change the policy on an update is that the most
appropriate policy may be different for different speed patterns.  For
example, a policy for which the predicted speed is the current speed
may be appropriate for highway driving in non-rush hour (when the
speed fluctuates only mildly), whereas a policy for which the
predicted speed is the average speed may be appropriate for city
driving, where the speed fluctuates sharply.  The pattern of the
current speed is a parameter that may be entered by the user, and
changed during a trip."

:class:`AdaptivePolicy` automates that parameter: it watches the
recent speed signal, classifies the driving regime by the coefficient
of variation, and delegates each decision to the policy suited to the
regime — cil (current speed) in steady regimes, ail (average speed) in
volatile ones.  Because the policy designation is a position
sub-attribute, the DBMS learns the active delegate from each update
and bounds the deviation with the delegate's bound (both delegates are
immediate-linear, so the bound is the same ``min(2C/t, Dt)`` either
way — adaptivity costs the DBMS nothing).
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.cost import DeviationCostFunction
from repro.core.policies import (
    AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy,
    register_policy,
)
from repro.core.policy import OnboardState, UpdateDecision, UpdatePolicy
from repro.errors import PolicyError


@register_policy
class AdaptivePolicy(UpdatePolicy):
    """Switches between cil and ail by observed speed volatility.

    Speed samples from the last ``window_minutes`` of trip time feed a
    coefficient-of-variation estimate; above ``volatility_threshold``
    the regime is "volatile" (city-like) and ail decides, otherwise cil
    decides.  The window is time-based so the behaviour does not depend
    on the simulation tick.  Hysteresis (``hysteresis`` fraction of the
    threshold) prevents flapping at the boundary.
    """

    name = "adaptive"

    def __init__(self, update_cost: float,
                 volatility_threshold: float = 0.35,
                 window_minutes: float = 4.0,
                 hysteresis: float = 0.2,
                 cost_function: DeviationCostFunction | None = None) -> None:
        super().__init__(update_cost, cost_function)
        if volatility_threshold <= 0:
            raise PolicyError(
                f"volatility threshold must be positive, got "
                f"{volatility_threshold}"
            )
        if window_minutes <= 0:
            raise PolicyError(
                f"window_minutes must be positive, got {window_minutes}"
            )
        if not 0 <= hysteresis < 1:
            raise PolicyError(
                f"hysteresis must be in [0, 1), got {hysteresis}"
            )
        self.volatility_threshold = volatility_threshold
        self.window_minutes = window_minutes
        self.hysteresis = hysteresis
        self._samples: deque[tuple[float, float]] = deque()
        self._volatile = False
        self._steady = CurrentImmediateLinearPolicy(update_cost, cost_function)
        self._volatile_policy = AverageImmediateLinearPolicy(
            update_cost, cost_function
        )

    @property
    def active_delegate(self) -> UpdatePolicy:
        """The policy currently making decisions."""
        return self._volatile_policy if self._volatile else self._steady

    def observed_volatility(self) -> float:
        """Coefficient of variation of the windowed speed signal."""
        n = len(self._samples)
        if n < 2:
            return 0.0
        speeds = [speed for _, speed in self._samples]
        mean = sum(speeds) / n
        if mean <= 1e-12:
            # All-stopped windows are maximally "volatile" relative to
            # any declared speed: classify as volatile.
            return float("inf")
        variance = sum((s - mean) ** 2 for s in speeds) / n
        return math.sqrt(variance) / mean

    def _reclassify(self) -> None:
        cv = self.observed_volatility()
        up = self.volatility_threshold * (1.0 + self.hysteresis)
        down = self.volatility_threshold * (1.0 - self.hysteresis)
        if not self._volatile and cv > up:
            self._volatile = True
        elif self._volatile and cv < down:
            self._volatile = False

    def decide(self, state: OnboardState) -> UpdateDecision:
        now = state.trip_elapsed
        self._samples.append((now, state.current_speed))
        cutoff = now - self.window_minutes
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()
        self._reclassify()
        return self.active_delegate.decide(state)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["volatility_threshold"] = self.volatility_threshold
        description["window_minutes"] = self.window_minutes
        description["active_delegate"] = self.active_delegate.name
        return description


__all__ = [
    "AdaptivePolicy",
]
