"""Deterministic replay of a recorded workload trace.

:class:`TraceReplayer` re-drives a trace against a *fresh*
:class:`~repro.dbms.database.MovingObjectDatabase` (and, for queries
recorded through the batch path, a fresh
:class:`~repro.dbms.batch.BatchQueryEngine`), recomputes every answer,
and compares its digest byte-for-byte against the recorded one.  A
clean report proves the run is reproducible; a mismatch pinpoints the
first diverging event.

Module-level imports stay stdlib-only (plus the trace siblings) so the
DBMS layer can import the recorder API without a cycle; the heavy
``dbms``/``index``/``geometry`` imports happen lazily at replay time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import TraceError
from repro.trace import events as ev
from repro.trace.events import TraceEvent, answer_digest
from repro.trace.recorder import read_trace, record_index_digest

#: Replay modes: honour the recorded engine, or force one path.
MODES = ("auto", "sequential", "batch")

#: Query kinds only the sequential database path can answer.
_DB_ONLY_KINDS = ("proximity", "nearest")


@dataclass(frozen=True, slots=True)
class ReplayMismatch:
    """One diverging event: recorded vs. recomputed digest."""

    seq: int
    kind: str
    expected: str
    actual: str
    detail: str = ""


@dataclass(slots=True)
class ReplayReport:
    """Outcome of one replay: totals plus every mismatch found."""

    events_total: int = 0
    queries_checked: int = 0
    index_checks: int = 0
    shard_checks: int = 0
    mismatches: list[ReplayMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


class TraceReplayer:
    """Re-drives a trace and verifies answer digests.

    ``mode`` selects the query path: ``auto`` (default) replays each
    query through the engine that recorded it, ``sequential`` forces
    every query through ``Database`` calls, ``batch`` forces groupable
    kinds through a :class:`BatchQueryEngine` (proximity and nearest
    queries always go through the database — the batch engine does not
    answer them).  Digests must match in every mode: the two paths are
    byte-equivalent by construction.
    """

    def __init__(self, mode: str = "auto",
                 shards: int | None = None) -> None:
        if mode not in MODES:
            raise TraceError(
                f"unknown replay mode {mode!r}; expected one of {MODES}"
            )
        if shards is not None and shards < 1:
            raise TraceError(f"shards must be >= 1, got {shards}")
        self.mode = mode
        #: Shard-count override: replay the workload over this many
        #: shards regardless of how it was recorded.  Answer digests
        #: must still match (sharding is answer-invariant); index
        #: content and shard-routing checks are skipped because the
        #: physical layout legitimately differs.
        self.shards = shards
        self._db: Any = None
        self._engine: Any = None
        self._events: Sequence[TraceEvent] = ()

    def replay_file(self, path: str) -> ReplayReport:
        """Load a JSONL trace from ``path`` and replay it."""
        _, trace_events = read_trace(path)
        return self.replay(trace_events)

    def replay(self, trace_events: Sequence[TraceEvent]) -> ReplayReport:
        """Replay ``trace_events`` in order; returns the report."""
        self._events = trace_events
        report = ReplayReport(events_total=len(trace_events))
        position = 0
        while position < len(trace_events):
            event = trace_events[position]
            if (event.kind == ev.QUERY
                    and self._effective_engine(event) == "batch"):
                group = [event]
                batch_id = event.data.get("batch")
                position += 1
                while position < len(trace_events):
                    nxt = trace_events[position]
                    if (nxt.kind != ev.QUERY
                            or self._effective_engine(nxt) != "batch"
                            or nxt.data.get("batch") != batch_id):
                        break
                    group.append(nxt)
                    position += 1
                self._replay_batch(group, report)
                continue
            self._apply(event, report)
            position += 1
        return report

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def _require_db(self, event: TraceEvent) -> Any:
        if self._db is None:
            raise TraceError(
                f"event {event.seq} ({event.kind}) arrived before any "
                "db_config event; the trace is truncated or reordered"
            )
        return self._db

    def _effective_engine(self, event: TraceEvent) -> str:
        if event.data.get("kind") in _DB_ONLY_KINDS:
            return "db"
        if self.mode == "auto":
            return event.data.get("engine", "db")
        return "db" if self.mode == "sequential" else "batch"

    def _apply(self, event: TraceEvent, report: ReplayReport) -> None:
        data = event.data
        if event.kind == ev.DB_CONFIG:
            self._db = self._build_database(data)
            self._engine = None
        elif event.kind == ev.CLASS_DEFINE:
            self._define_class(self._require_db(event), data)
        elif event.kind == ev.ROUTE_REGISTER:
            self._register_route(self._require_db(event), data)
        elif event.kind == ev.INSERT_MOBILE:
            self._insert_mobile(self._require_db(event), event)
        elif event.kind == ev.INSERT_STATIONARY:
            self._insert_stationary(self._require_db(event), event)
        elif event.kind == ev.REMOVE_OBJECT:
            self._require_db(event).remove_object(event.object_id)
        elif event.kind == ev.UPDATE:
            self._install_update(self._require_db(event), event)
        elif event.kind == ev.QUERY:
            answer = self._issue_query(self._require_db(event), event)
            self._check(event, answer, report)
        elif event.kind == ev.INDEX_CONFIG:
            self._require_db(event).rebuild_index(
                slab_minutes=data.get("slab_minutes", 5.0),
                max_entries=data.get("max_entries", 8),
                min_entries=data.get("min_entries", 3),
            )
            self._engine = None  # the swap invalidates cached traversals
        elif event.kind == ev.SHARD_ROUTE:
            db = self._require_db(event)
            if self.shards is None and hasattr(db, "owner_of"):
                report.shard_checks += 1
                actual_shard = db.owner_of(event.object_id)
                if actual_shard != data.get("shard"):
                    report.mismatches.append(ReplayMismatch(
                        seq=event.seq, kind=event.kind,
                        expected=str(data.get("shard")),
                        actual=str(actual_shard),
                        detail="shard routing diverged",
                    ))
            # Under a --shards override the layout legitimately differs.
        elif event.kind == ev.INDEX_DIGEST:
            if self.shards is not None:
                pass  # override changes the physical index layout
            else:
                actual = record_index_digest(self._require_db(event))
                report.index_checks += 1
                if actual != data.get("digest"):
                    report.mismatches.append(ReplayMismatch(
                        seq=event.seq, kind=event.kind,
                        expected=str(data.get("digest")),
                        actual=str(actual),
                        detail="index content digest diverged",
                    ))
        elif event.kind in (ev.CACHE, ev.INDEX_INSERT, ev.INDEX_REPLACE,
                            ev.INDEX_REMOVE):
            pass  # derived events; the re-driven machinery re-emits them
        else:  # pragma: no cover - KINDS is closed in events.py
            raise TraceError(f"unreplayable event kind {event.kind!r}")

    def _build_database(self, data: dict[str, Any]) -> Any:
        from repro.dbms.database import MovingObjectDatabase

        index_name = data.get("index", "none")
        slab_minutes = data.get("slab_minutes", 5.0)
        index_factory: Any
        if index_name in (None, "none", "NoneType"):
            index_factory = None
        elif index_name == "TimeSpaceIndex":
            from repro.index.timespace import TimeSpaceIndex

            def index_factory() -> Any:
                return TimeSpaceIndex(slab_minutes=slab_minutes)
        elif index_name == "LinearScanIndex":
            from repro.index.scan import LinearScanIndex

            index_factory = LinearScanIndex
        else:
            raise TraceError(
                f"trace was recorded with unknown index {index_name!r}"
            )
        if data.get("shards") is None and self.shards is None:
            return MovingObjectDatabase(
                index=index_factory() if index_factory else None,
                horizon=data.get("horizon", 120.0),
            )
        from repro.shard.partition import (
            partitioning_from_spec,
            uniform_grid_for,
        )
        from repro.shard.sharded import ShardedDatabase

        if self.shards is not None:
            partitioning = uniform_grid_for(
                self._trace_bounds(), self.shards
            )
        else:
            partitioning = partitioning_from_spec(data["partitioning"])
        return ShardedDatabase(
            partitioning, index_factory=index_factory,
            horizon=data.get("horizon", 120.0),
        )

    def _trace_bounds(self) -> Any:
        """Spatial extent of the trace, for --shards override grids.

        Any bounds yield correct answers (partitionings clamp
        out-of-range points to the nearest cell); tight bounds just
        make the override grid meaningful.
        """
        from repro.shard.cost import workload_from_events

        return workload_from_events(self._events).bounds

    @staticmethod
    def _define_class(db: Any, data: dict[str, Any]) -> None:
        from repro.dbms.schema import (
            AttributeDef,
            Mobility,
            ObjectClass,
            SpatialKind,
        )

        db.schema.define(ObjectClass(
            name=data["name"],
            spatial_kind=SpatialKind(data["spatial_kind"]),
            mobility=Mobility(data["mobility"]),
            attributes=tuple(
                AttributeDef(a["name"], a["type"], a.get("required", False))
                for a in data.get("attributes", [])
            ),
        ))

    @staticmethod
    def _register_route(db: Any, data: dict[str, Any]) -> None:
        from repro.geometry.point import Point
        from repro.geometry.polyline import Polyline
        from repro.routes.route import Route

        db.register_route(Route(
            data["route_id"],
            Polyline(Point(x, y) for x, y in data["vertices"]),
            name=data.get("name"),
        ))

    @staticmethod
    def _insert_mobile(db: Any, event: TraceEvent) -> None:
        from repro.core.serialize import policy_from_spec
        from repro.geometry.point import Point

        data = event.data
        db.insert_moving_object(
            event.object_id, data["class_name"], data["route_id"],
            event.time, Point(*data["position"]), data["direction"],
            data["speed"], policy_from_spec(data["policy"]),
            max_speed=data["max_speed"],
            attributes=data.get("attributes"),
        )

    @staticmethod
    def _insert_stationary(db: Any, event: TraceEvent) -> None:
        from repro.geometry.point import Point

        data = event.data
        db.insert_stationary_object(
            event.object_id, data["class_name"],
            Point(*data["position"]), attributes=data.get("attributes"),
        )

    @staticmethod
    def _install_update(db: Any, event: TraceEvent) -> None:
        from repro.dbms.update_log import PositionUpdateMessage

        data = event.data
        db.process_update(PositionUpdateMessage(
            event.object_id, event.time, data["x"], data["y"],
            data["speed"], route_id=data.get("route_id"),
            direction=data.get("direction"), policy=data.get("policy"),
        ))

    def _issue_query(self, db: Any, event: TraceEvent) -> Any:
        from repro.geometry.point import Point
        from repro.geometry.polygon import Polygon

        data = event.data
        kind = data.get("kind")
        where = data.get("where")
        class_name = data.get("class_name")
        if kind == "position":
            return db.position_of(event.object_id, event.time)
        if kind == "range":
            return db.range_query(
                Polygon.from_coordinates(
                    [(x, y) for x, y in data["polygon"]]
                ),
                event.time, where=where, class_name=class_name,
            )
        if kind == "within":
            return db.within_distance(
                Point(*data["center"]), data["radius"], event.time,
                where=where, class_name=class_name,
            )
        if kind == "proximity":
            return db.within_distance_of_object(
                event.object_id, data["radius"], event.time,
                where=where, class_name=class_name,
            )
        if kind == "nearest":
            return db.nearest(
                Point(*data["center"]), data["k"], event.time,
                where=where, class_name=class_name,
            )
        raise TraceError(
            f"event {event.seq}: unknown query kind {kind!r}"
        )

    def _replay_batch(self, group: list[TraceEvent],
                      report: ReplayReport) -> None:
        from repro.dbms.batch import (
            BatchQueryEngine,
            PositionQuery,
            RangeQuery,
            WithinDistanceQuery,
        )
        from repro.geometry.point import Point
        from repro.geometry.polygon import Polygon

        db = self._require_db(group[0])
        if self._engine is None:
            if hasattr(db, "shards_for_window"):
                from repro.shard.parallel import ShardedBatchQueryEngine

                self._engine = ShardedBatchQueryEngine(db)
            else:
                self._engine = BatchQueryEngine(db)
        queries: list[Any] = []
        for event in group:
            data = event.data
            kind = data.get("kind")
            if kind == "position":
                queries.append(PositionQuery(event.object_id, event.time))
            elif kind == "range":
                queries.append(RangeQuery(
                    Polygon.from_coordinates(
                        [(x, y) for x, y in data["polygon"]]
                    ),
                    event.time, where=data.get("where"),
                    class_name=data.get("class_name"),
                ))
            elif kind == "within":
                queries.append(WithinDistanceQuery(
                    Point(*data["center"]), data["radius"], event.time,
                    where=data.get("where"),
                    class_name=data.get("class_name"),
                ))
            else:
                raise TraceError(
                    f"event {event.seq}: query kind {kind!r} cannot "
                    "replay through the batch engine"
                )
        answers = self._engine.run(queries)
        for event, answer in zip(group, answers):
            self._check(event, answer, report)

    def _check(self, event: TraceEvent, answer: Any,
               report: ReplayReport) -> None:
        report.queries_checked += 1
        expected = event.data.get("digest")
        actual = answer_digest(answer)
        if actual != expected:
            report.mismatches.append(ReplayMismatch(
                seq=event.seq, kind=event.kind,
                expected=str(expected), actual=actual,
                detail=f"{event.data.get('kind')} query answer diverged",
            ))


__all__ = [
    "MODES",
    "ReplayMismatch",
    "ReplayReport",
    "TraceReplayer",
]
