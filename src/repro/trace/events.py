"""Event model for the workload flight recorder.

A trace is a schema-versioned stream of :class:`TraceEvent` records —
one line of JSON per DBMS-visible event (schema definition, object
insert, update install, query with its answer digest, cache activity,
index maintenance).  Timestamps are *logical*: they are the domain
times carried by the workload itself (update time, query time), never
wall clock, so a trace recorded today replays byte-identically
tomorrow.

Answer digests are SHA-256 over a canonical JSON encoding of the
answer's observable fields.  ``json.dumps`` with sorted keys and
``repr``-exact floats makes the digest a byte-level equality check:
two answers digest equal iff every bound, interval, and member set is
identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import TraceError

#: Trace schema identifier; bump on any incompatible event change.
#: ``repro-trace/2`` adds sharding: ``shard_route`` events and the
#: ``shards``/``partitioning`` keys on ``db_config``.
SCHEMA = "repro-trace/2"

#: Prior schema; ``/2`` is a strict superset, so v1 traces still read.
SCHEMA_V1 = "repro-trace/1"

#: Every schema id :func:`repro.trace.recorder.read_trace` accepts.
READABLE_SCHEMAS = (SCHEMA, SCHEMA_V1)

DB_CONFIG = "db_config"
CLASS_DEFINE = "class_define"
ROUTE_REGISTER = "route_register"
INSERT_MOBILE = "insert_mobile"
INSERT_STATIONARY = "insert_stationary"
REMOVE_OBJECT = "remove_object"
UPDATE = "update"
QUERY = "query"
CACHE = "cache"
INDEX_INSERT = "index_insert"
INDEX_REPLACE = "index_replace"
INDEX_REMOVE = "index_remove"
INDEX_DIGEST = "index_digest"
INDEX_CONFIG = "index_config"
SHARD_ROUTE = "shard_route"

#: Every event kind the ``repro-trace/2`` schema admits.
KINDS = frozenset({
    DB_CONFIG,
    CLASS_DEFINE,
    ROUTE_REGISTER,
    INSERT_MOBILE,
    INSERT_STATIONARY,
    REMOVE_OBJECT,
    UPDATE,
    QUERY,
    CACHE,
    INDEX_INSERT,
    INDEX_REPLACE,
    INDEX_REMOVE,
    INDEX_DIGEST,
    INDEX_CONFIG,
    SHARD_ROUTE,
})


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event: a monotone sequence number, a kind from
    :data:`KINDS`, an optional logical (domain) timestamp, optional
    per-object provenance, and a JSON-safe payload."""

    seq: int
    kind: str
    time: float | None = None
    object_id: str | None = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TraceError(f"event seq must be >= 0, got {self.seq}")
        if self.kind not in KINDS:
            raise TraceError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict with a stable field set."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "time": self.time,
            "object_id": self.object_id,
            "data": dict(self.data),
        }


def canonical_json(payload: Any) -> str:
    """The canonical (sorted-key, no-whitespace) encoding digests use."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def position_answer_payload(answer: Any) -> dict[str, Any]:
    """Observable fields of a ``PositionAnswer`` as JSON-safe data."""
    interval = answer.interval
    return {
        "kind": "position",
        "object_id": answer.object_id,
        "time": answer.time,
        "position": [answer.position.x, answer.position.y],
        "slow_bound": answer.slow_bound,
        "fast_bound": answer.fast_bound,
        "error_bound": answer.error_bound,
        "interval": {
            "route_id": interval.route_id,
            "direction": interval.direction,
            "lower": interval.lower,
            "upper": interval.upper,
        },
    }


def range_answer_payload(answer: Any) -> dict[str, Any]:
    """Observable fields of a ``RangeAnswer`` (may/must semantics)."""
    return {
        "kind": "range",
        "time": answer.time,
        "may": sorted(answer.may),
        "must": sorted(answer.must),
        "examined": answer.examined,
        "candidates": sorted(answer.candidates),
    }


def nearest_answer_payload(answers: Iterable[Any]) -> dict[str, Any]:
    """Observable fields of a ranked ``NearestAnswer`` list."""
    return {
        "kind": "nearest",
        "entries": [
            {
                "object_id": entry.object_id,
                "min_distance": entry.min_distance,
                "max_distance": entry.max_distance,
                "certain": entry.certain,
            }
            for entry in answers
        ],
    }


def answer_digest(answer: Any) -> str:
    """Digest any DBMS answer shape (position, range, nearest list)."""
    if isinstance(answer, (list, tuple)):
        return digest(nearest_answer_payload(answer))
    if hasattr(answer, "may"):
        return digest(range_answer_payload(answer))
    if hasattr(answer, "position"):
        return digest(position_answer_payload(answer))
    raise TraceError(
        f"cannot digest answer of type {type(answer).__name__}"
    )


__all__ = [
    "CACHE",
    "CLASS_DEFINE",
    "DB_CONFIG",
    "INDEX_CONFIG",
    "INDEX_DIGEST",
    "INDEX_INSERT",
    "INDEX_REMOVE",
    "INDEX_REPLACE",
    "INSERT_MOBILE",
    "INSERT_STATIONARY",
    "KINDS",
    "QUERY",
    "READABLE_SCHEMAS",
    "REMOVE_OBJECT",
    "ROUTE_REGISTER",
    "SCHEMA",
    "SCHEMA_V1",
    "SHARD_ROUTE",
    "TraceEvent",
    "UPDATE",
    "answer_digest",
    "canonical_json",
    "digest",
    "nearest_answer_payload",
    "position_answer_payload",
    "range_answer_payload",
]
