"""Human-readable summaries of a recorded trace."""

from __future__ import annotations

from typing import IO, Any, Mapping, Sequence

from repro.trace.events import QUERY, SCHEMA, TraceEvent


def summarize(meta: Mapping[str, Any],
              trace_events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Aggregate counts for one trace: events by kind, object and
    query populations, and the logical time span covered."""
    by_kind: dict[str, int] = {}
    queries: dict[str, int] = {}
    objects: set[str] = set()
    times: list[float] = []
    for event in trace_events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        if event.object_id is not None:
            objects.add(event.object_id)
        if event.time is not None:
            times.append(event.time)
        if event.kind == QUERY:
            kind = str(event.data.get("kind"))
            queries[kind] = queries.get(kind, 0) + 1
    return {
        "schema": SCHEMA,
        "meta": dict(meta),
        "events": len(trace_events),
        "by_kind": dict(sorted(by_kind.items())),
        "objects": len(objects),
        "time_span": [min(times), max(times)] if times else None,
        "queries": dict(sorted(queries.items())),
    }


def render_summary(summary: Mapping[str, Any], out: IO[str]) -> None:
    """Print a :func:`summarize` document as aligned text lines."""
    out.write(f"schema:  {summary['schema']}\n")
    for key, value in sorted(summary["meta"].items()):
        out.write(f"meta:    {key} = {value}\n")
    out.write(f"events:  {summary['events']}\n")
    out.write(f"objects: {summary['objects']}\n")
    span = summary["time_span"]
    if span is not None:
        out.write(f"time:    [{span[0]:g}, {span[1]:g}]\n")
    for kind, count in summary["by_kind"].items():
        out.write(f"  {kind:<18} {count}\n")
    if summary["queries"]:
        out.write("queries by kind:\n")
        for kind, count in summary["queries"].items():
            out.write(f"  {kind:<18} {count}\n")


__all__ = ["render_summary", "summarize"]
