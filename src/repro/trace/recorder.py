"""The flight recorder: capture, serialize, and load workload traces.

Mirrors the ambient-instance pattern of :mod:`repro.obs.registry`: a
module-level active recorder defaults to a no-op :class:`NullRecorder`
(``enabled`` is ``False``, so hot paths pay one attribute test), and
:func:`use_recorder` swaps a live :class:`TraceRecorder` in for the
duration of a ``with`` block.

Serialization is JSONL (:func:`write_trace` / :func:`read_trace`): a
header line carrying the schema id, event count, and free-form
metadata, then one canonical-JSON event per line.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Any, Iterator, Mapping

from repro.errors import TraceError
from repro.trace.events import (
    KINDS,
    QUERY,
    READABLE_SCHEMAS,
    SCHEMA,
    TraceEvent,
)


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in memory.

    ``enabled`` is a class attribute so instrumented call sites can
    hoist the check (``rec = get_recorder()`` then ``if rec.enabled:``)
    exactly like the metrics registry.
    """

    enabled = True

    def __init__(self, meta: Mapping[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self._events: list[TraceEvent] = []
        self._next_seq = 0
        self._next_batch = 0

    def record(self, kind: str, *, time: float | None = None,
               object_id: str | None = None, **data: Any) -> TraceEvent:
        """Append an event; ``data`` becomes its JSON payload."""
        event = TraceEvent(self._next_seq, kind, time, object_id, data)
        self._next_seq += 1
        self._events.append(event)
        return event

    def record_query(self, query_kind: str, digest: str, *,
                     time: float, object_id: str | None = None,
                     engine: str = "db", batch: int | None = None,
                     index: int | None = None,
                     **params: Any) -> TraceEvent:
        """Append a query event.

        Separate from :meth:`record` because the payload needs its own
        ``kind`` key (position/range/within/proximity/nearest) next to
        the answer digest and the issuing engine (``db`` for the
        sequential path, ``batch`` with a batch id and intra-batch
        index for :class:`~repro.dbms.batch.BatchQueryEngine`).
        """
        data: dict[str, Any] = {"kind": query_kind, "digest": digest,
                                "engine": engine}
        if batch is not None:
            data["batch"] = batch
        if index is not None:
            data["index"] = index
        data.update(params)
        event = TraceEvent(self._next_seq, QUERY, time, object_id, data)
        self._next_seq += 1
        self._events.append(event)
        return event

    def next_batch_id(self) -> int:
        """A fresh id grouping one ``BatchQueryEngine.run()`` call."""
        batch = self._next_batch
        self._next_batch += 1
        return batch

    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [event.to_dict() for event in self._events]

    def clear(self) -> None:
        self._events.clear()
        self._next_seq = 0
        self._next_batch = 0

    def __len__(self) -> int:
        return len(self._events)


class NullRecorder(TraceRecorder):
    """Default recorder: records nothing, costs one attribute test."""

    enabled = False

    def record(self, kind: str, *, time: float | None = None,
               object_id: str | None = None, **data: Any) -> None:  # type: ignore[override]
        return None

    def record_query(self, query_kind: str, digest: str, *,
                     time: float, object_id: str | None = None,
                     engine: str = "db", batch: int | None = None,
                     index: int | None = None,
                     **params: Any) -> None:  # type: ignore[override]
        return None

    def next_batch_id(self) -> int:
        return 0


_NULL_RECORDER = NullRecorder()
_active_recorder: TraceRecorder = _NULL_RECORDER


def get_recorder() -> TraceRecorder:
    """The ambient recorder (a no-op unless one is installed)."""
    return _active_recorder


def set_recorder(recorder: TraceRecorder | None) -> TraceRecorder:
    """Install ``recorder`` (or the null recorder); returns previous."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder if recorder is not None else _NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Scoped installation; creates a fresh recorder when none given."""
    if recorder is None:
        recorder = TraceRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def record_index_digest(database: Any,
                        recorder: TraceRecorder | None = None) -> str | None:
    """Record the database index's content digest as a checkpoint event.

    Returns the digest, or ``None`` when the database has no index (or
    an index without :meth:`content_digest`).  The event is appended to
    ``recorder`` if given, else to the active recorder when enabled.
    """
    from repro.trace.events import INDEX_DIGEST, digest as _digest

    shard_indexes = getattr(database, "shard_indexes", None)
    if callable(shard_indexes):
        # Sharded facade: one combined checkpoint over the per-shard
        # index digests, in shard order.
        parts = []
        for index in shard_indexes():
            if index is None or not hasattr(index, "content_digest"):
                return None
            parts.append(index.content_digest())
        value = _digest(parts)
        name = f"sharded[{len(parts)}]"
    else:
        index = getattr(database, "_index", None)
        if index is None or not hasattr(index, "content_digest"):
            return None
        value = index.content_digest()
        name = type(index).__name__
    target = recorder if recorder is not None else get_recorder()
    if target.enabled:
        target.record(INDEX_DIGEST, digest=value, index=name)
    return value


def write_trace(recorder: TraceRecorder, target: str | IO[str]) -> int:
    """Write ``recorder``'s events as JSONL; returns the event count.

    Line 1 is the header ``{"schema", "events", "meta"}``; every
    following line is one event, keys sorted so traces diff cleanly.
    """
    events = recorder.to_dicts()
    header = {"schema": SCHEMA, "events": len(events),
              "meta": recorder.meta}
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(event, sort_keys=True) for event in events)
    text = "\n".join(lines) + "\n"
    if isinstance(target, str):
        try:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            raise TraceError(f"cannot write trace {target!r}: {exc}") from exc
    else:
        target.write(text)
    return len(events)


def read_trace(source: str | IO[str]) -> tuple[dict[str, Any], list[TraceEvent]]:
    """Load a JSONL trace; returns ``(meta, events)``.

    Raises :class:`TraceError` on a missing/foreign schema header, a
    malformed line, an unknown event kind, or an event-count mismatch.
    """
    if isinstance(source, str):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise TraceError(f"cannot read trace {source!r}: {exc}") from exc
    else:
        raw = source.read()
    lines = [line for line in raw.splitlines() if line.strip()]
    if not lines:
        raise TraceError("empty trace: missing schema header")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"unreadable trace header: {exc}") from exc
    if (not isinstance(header, dict)
            or header.get("schema") not in READABLE_SCHEMAS):
        raise TraceError(
            f"unsupported trace schema {header.get('schema') if isinstance(header, dict) else header!r}; "
            f"this build reads {', '.join(READABLE_SCHEMAS)}"
        )
    events: list[TraceEvent] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"bad JSON on line {lineno}: {exc}") from exc
        kind = document.get("kind")
        if kind not in KINDS:
            raise TraceError(f"unknown event kind {kind!r} on line {lineno}")
        events.append(TraceEvent(
            seq=document["seq"], kind=kind, time=document.get("time"),
            object_id=document.get("object_id"),
            data=document.get("data", {}),
        ))
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise TraceError(
            f"trace declares {declared} events but contains {len(events)}"
        )
    return dict(header.get("meta") or {}), events


__all__ = [
    "NullRecorder",
    "TraceRecorder",
    "get_recorder",
    "read_trace",
    "record_index_digest",
    "set_recorder",
    "use_recorder",
    "write_trace",
]
