"""Workload flight recorder: record, serialize, summarize, and replay
every DBMS-visible event of a run (schema ``repro-trace/2``; traces
written by the ``repro-trace/1`` builds still read and replay).

Typical use::

    with use_recorder() as recorder:
        ...drive the database...
    write_trace(recorder, "run.jsonl")

    report = TraceReplayer().replay_file("run.jsonl")
    assert report.ok  # byte-identical answer digests
"""

from repro.trace.events import (
    KINDS,
    SCHEMA,
    TraceEvent,
    answer_digest,
    canonical_json,
    digest,
)
from repro.trace.recorder import (
    NullRecorder,
    TraceRecorder,
    get_recorder,
    read_trace,
    record_index_digest,
    set_recorder,
    use_recorder,
    write_trace,
)
from repro.trace.replay import (
    MODES,
    ReplayMismatch,
    ReplayReport,
    TraceReplayer,
)
from repro.trace.summary import render_summary, summarize

__all__ = [
    "KINDS",
    "MODES",
    "NullRecorder",
    "ReplayMismatch",
    "ReplayReport",
    "SCHEMA",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "answer_digest",
    "canonical_json",
    "digest",
    "get_recorder",
    "read_trace",
    "record_index_digest",
    "render_summary",
    "set_recorder",
    "summarize",
    "use_recorder",
    "write_trace",
]
