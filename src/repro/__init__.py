"""repro — a moving-objects database with cost-based update policies.

A full reproduction of Wolfson, Chamberlain, Dao, Jiang & Mendez,
*Cost and Imprecision in Modeling the Position of Moving Objects*
(ICDE 1998): temporal position attributes, the dl/ail/cil update
policies with their optimal thresholds (Proposition 1), DBMS-side
deviation bounds (Propositions 2–4), uncertainty intervals, may/must
range-query semantics (Theorems 5–6), o-plane time-space indexing over
a from-scratch 3-D R-tree, a trip simulator, and an experiment harness
regenerating the paper's evaluation.

Quickstart::

    import random
    from repro import (
        AverageImmediateLinearPolicy, Trip, HighwayCurve, simulate_trip,
    )

    curve = HighwayCurve(60.0, random.Random(1))      # a one-hour trip
    trip = Trip.synthetic(curve)
    result = simulate_trip(trip, AverageImmediateLinearPolicy(update_cost=5.0))
    print(result.metrics.num_updates, result.metrics.total_cost)

See ``examples/`` for fleet + DBMS + index usage and ``DESIGN.md`` for
the system inventory.
"""

from repro.core import (
    AdaptivePolicy,
    AverageImmediateLinearPolicy,
    CurrentImmediateLinearPolicy,
    DelayedLinearPolicy,
    DeviationBounds,
    FixedThresholdPolicy,
    HorizonCostPolicy,
    OnboardState,
    PeriodicPolicy,
    PositionAttribute,
    StepDeviationCost,
    TraditionalPointPolicy,
    UncertaintyInterval,
    UniformDeviationCost,
    UpdateDecision,
    UpdatePolicy,
    delayed_linear_bounds,
    immediate_linear_bounds,
    make_policy,
    optimal_update_threshold,
)
from repro.dbms import (
    BatchQueryEngine,
    MovingObjectDatabase,
    PositionAnswer,
    PositionQuery,
    PositionUpdateMessage,
    RangeAnswer,
    RangeQuery,
    WithinDistanceQuery,
)
from repro.geometry import Point, Polygon, Polyline
from repro.index import LinearScanIndex, OPlane, RTree, TimeSpaceIndex
from repro.routes import (
    Route,
    RouteDatabase,
    RouteNetwork,
    grid_city_network,
    radial_highway_network,
    random_network,
    straight_route,
    winding_route,
)
from repro.sim import (
    CityCurve,
    ConstantCurve,
    HighwayCurve,
    MixedCurve,
    PiecewiseConstantCurve,
    RushHourCurve,
    TraceCurve,
    TrafficJamCurve,
    Trip,
    TripMetrics,
    simulate_trip,
    standard_curve_set,
)
from repro.analysis import OfflineSchedule, offline_optimal_schedule
from repro.exec import GridTrip, SweepExecutor, TickGrid, TripTickCache
from repro.trace import (
    TraceRecorder,
    TraceReplayer,
    read_trace,
    use_recorder,
    write_trace,
)
from repro.workloads import (
    battlefield_scenario,
    taxi_fleet_scenario,
    trucking_scenario,
)

__version__ = "1.0.0"

__all__ = [
    # policies & core model
    "PositionAttribute",
    "UpdatePolicy",
    "UpdateDecision",
    "OnboardState",
    "DelayedLinearPolicy",
    "AverageImmediateLinearPolicy",
    "CurrentImmediateLinearPolicy",
    "TraditionalPointPolicy",
    "FixedThresholdPolicy",
    "PeriodicPolicy",
    "AdaptivePolicy",
    "HorizonCostPolicy",
    "make_policy",
    "optimal_update_threshold",
    "UniformDeviationCost",
    "StepDeviationCost",
    "DeviationBounds",
    "delayed_linear_bounds",
    "immediate_linear_bounds",
    "UncertaintyInterval",
    # DBMS
    "MovingObjectDatabase",
    "PositionUpdateMessage",
    "PositionAnswer",
    "RangeAnswer",
    "BatchQueryEngine",
    "PositionQuery",
    "RangeQuery",
    "WithinDistanceQuery",
    # geometry & routes
    "Point",
    "Polyline",
    "Polygon",
    "Route",
    "RouteDatabase",
    "RouteNetwork",
    "straight_route",
    "winding_route",
    "grid_city_network",
    "radial_highway_network",
    "random_network",
    # index
    "RTree",
    "OPlane",
    "TimeSpaceIndex",
    "LinearScanIndex",
    # simulation
    "Trip",
    "TripMetrics",
    "simulate_trip",
    "ConstantCurve",
    "PiecewiseConstantCurve",
    "HighwayCurve",
    "CityCurve",
    "TrafficJamCurve",
    "RushHourCurve",
    "TraceCurve",
    "MixedCurve",
    "standard_curve_set",
    # analysis
    "OfflineSchedule",
    "offline_optimal_schedule",
    # execution
    "SweepExecutor",
    "TripTickCache",
    "TickGrid",
    "GridTrip",
    # trace
    "TraceRecorder",
    "TraceReplayer",
    "read_trace",
    "use_recorder",
    "write_trace",
    # workloads
    "taxi_fleet_scenario",
    "trucking_scenario",
    "battlefield_scenario",
    "__version__",
]
