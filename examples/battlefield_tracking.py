"""Battlefield tracking: regions, allegiances and may/must certainty.

"Retrieve the friendly helicopters that are currently in a given
region."  Units move on an irregular road web; commanders draw regions
and need to know which friendlies are certainly inside (safe to task)
and which are only possibly inside (verify before tasking).

Run:  python examples/battlefield_tracking.py
"""

import random

from repro import Polygon
from repro.index.rtree import SearchStats
from repro.workloads import battlefield_scenario


def main() -> None:
    scenario = battlefield_scenario(
        num_units=24, duration=15.0, seed=23, policy="cil", update_cost=2.0
    )
    print(f"Simulating {len(scenario.database)} units for 15 minutes...")
    scenario.fleet.run()
    t = scenario.database.clock_time

    min_x, min_y, max_x, max_y = scenario.network.bounding_extent()
    rng = random.Random(4)

    units = scenario.database.table("unit")
    friendly = set(units.scan(allegiance="friendly"))
    print(f"  {len(friendly)} friendly / "
          f"{len(scenario.database) - len(friendly)} hostile units")
    print()

    for i in range(3):
        cx = rng.uniform(min_x, max_x)
        cy = rng.uniform(min_y, max_y)
        size = rng.uniform(4.0, 8.0)
        region = Polygon.rectangle(
            cx - size / 2, cy - size / 2, cx + size / 2, cy + size / 2
        )
        stats = SearchStats()
        answer = scenario.database.range_query(region, t, stats)
        must_friendly = sorted(answer.must & friendly)
        may_friendly = sorted(answer.uncertain & friendly)
        print(f"Region {i + 1}: {size:.1f} x {size:.1f} mi around "
              f"({cx:.1f}, {cy:.1f})")
        print(f"  index candidates examined : {answer.examined} "
              f"of {len(scenario.database)}")
        print(f"  friendlies certainly in   : {must_friendly}")
        print(f"  friendlies possibly in    : {may_friendly}")
        # Ground truth check (the simulator knows where everyone is).
        truly_inside = sorted(
            unit for unit in friendly
            if region.contains_point(scenario.fleet.actual_position(unit, t))
        )
        print(f"  ground truth              : {truly_inside}")
        print()

    print("Certainty tiers come from each unit's uncertainty interval: "
          "an interval wholly inside the region is a 'must' (Theorem 6); "
          "an interval crossing the boundary is only a 'may' (Theorem 5).")


if __name__ == "__main__":
    main()
