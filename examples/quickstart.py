"""Quickstart: one vehicle, one policy, one query.

Walks the paper's core loop end to end:

1. a vehicle drives a one-hour synthetic trip,
2. the ail update policy decides when to send position updates,
3. the DBMS dead-reckons the position in between and answers a
   position query with an error bound and uncertainty interval.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AverageImmediateLinearPolicy,
    CityCurve,
    MovingObjectDatabase,
    PositionUpdateMessage,
    Trip,
    optimal_update_threshold,
    simulate_trip,
)


def main() -> None:
    rng = random.Random(7)

    # --- 1. The update-threshold mathematics (Proposition 1) ---------
    print("Proposition 1: optimal update threshold")
    for slope, delay in ((1.0, 0.0), (1.0, 2.0), (0.5, 1.0)):
        k = optimal_update_threshold(slope, delay, update_cost=5.0)
        print(f"  slope a={slope}, delay b={delay}, C=5  ->  "
              f"k_opt = {k:.3f} miles")
    print()

    # --- 2. Simulate a trip under the ail policy ----------------------
    curve = CityCurve(duration=60.0, rng=rng)   # stop-and-go city hour
    trip = Trip.synthetic(curve, route_id="quickstart")
    policy = AverageImmediateLinearPolicy(update_cost=5.0)
    result = simulate_trip(trip, policy)

    m = result.metrics
    print(f"One-hour city trip under the ail policy (C = 5):")
    print(f"  update messages sent : {m.num_updates}")
    print(f"  total cost (Eq. 2)   : {m.total_cost:.2f}")
    print(f"  average deviation    : {m.avg_deviation:.3f} miles")
    print(f"  average uncertainty  : {m.avg_uncertainty:.3f} miles")
    print(f"  update times (min)   : "
          f"{[round(u.time, 1) for u in result.updates]}")
    print()

    # --- 3. The DBMS view: dead reckoning + error bounds --------------
    database = MovingObjectDatabase()
    database.schema.define_mobile_point_class("car")
    database.register_route(trip.route)
    database.insert_moving_object(
        object_id="car-1",
        class_name="car",
        route_id=trip.route.route_id,
        t=0.0,
        position=trip.position(0.0),
        direction=0,
        speed=trip.speed(0.0),
        policy=policy,
        max_speed=trip.max_speed,
    )
    # Replay the simulated updates into the database.
    for update in result.updates:
        point = trip.route.travel_point(update.travel, trip.direction)
        database.process_update(
            PositionUpdateMessage(
                "car-1", update.time, point.x, point.y,
                update.declared_speed,
            )
        )

    t = 60.0
    answer = database.position_of("car-1", t)
    actual = trip.position(t)
    print(f"Query at t = {t:.0f} min: where is car-1?")
    print(f"  database position : ({answer.position.x:.3f}, "
          f"{answer.position.y:.3f})")
    print(f"  actual position   : ({actual.x:.3f}, {actual.y:.3f})")
    print(f"  error bound       : {answer.error_bound:.3f} miles "
          "(Prop. 4 / Cor. 1)")
    print(f"  uncertainty span  : [{answer.interval.lower:.3f}, "
          f"{answer.interval.upper:.3f}] miles along the route")
    deviation = trip.route.route_distance(
        answer.position, actual, tolerance=1e-3
    )
    print(f"  true deviation    : {deviation:.3f} miles "
          f"(within the bound: {deviation <= answer.error_bound + 1e-3})")


if __name__ == "__main__":
    main()
