"""Time-space indexing: o-planes, slab boxes, and sublinear retrieval.

Shows the §4 machinery directly: an o-plane built from a position
attribute and its policy bounds, its decomposition into R-tree slab
boxes, the §4.2 swap on a position update, and the candidates-examined
advantage over a linear scan.

Run:  python examples/indexing_demo.py
"""

import random

from repro.experiments.indexing import _build_fleet
from repro.index.rtree import SearchStats
from repro.workloads.query_workloads import polygon_query_workload


def main() -> None:
    print("Building a 300-vehicle fleet with a time-space index...")
    built = _build_fleet(300, seed=5, use_index=True, duration=10.0)
    database = built.database
    index = database._index
    t = built.end_time

    print(f"  objects indexed  : {len(index)}")
    print(f"  slab boxes stored: {index.total_boxes()}")
    print(f"  R-tree height    : {index.tree.height}, "
          f"nodes: {index.tree.node_count()}")
    print()

    # --- One object's o-plane ----------------------------------------
    object_id = database.object_ids()[0]
    plane = database.oplane_of(object_id)
    boxes = plane.boxes(slab_minutes=5.0)
    print(f"o-plane of {object_id}: starts at t = {plane.start_time:.1f}, "
          f"horizon {plane.horizon:.0f} min, {len(boxes)} slab boxes")
    for box in boxes[:4]:
        print(f"  t in [{box.min_t:6.1f}, {box.max_t:6.1f}]  "
              f"x in [{box.min_x:6.2f}, {box.max_x:6.2f}]  "
              f"y in [{box.min_y:6.2f}, {box.max_y:6.2f}]")
    print("  ...")
    print()

    # --- Query cost: index vs. linear scan ---------------------------
    rng = random.Random(9)
    polygons = polygon_query_workload(built.network, rng, 25,
                                      side_miles=(1.0, 2.0))
    examined = 0
    found = 0
    for polygon in polygons:
        stats = SearchStats()
        answer = database.range_query(polygon, t, stats)
        examined += answer.examined
        found += len(answer.may)
    print(f"25 range queries over {len(database)} objects:")
    print(f"  index: {examined / 25:.1f} candidates examined per query "
          f"({examined / 25 / len(database):.1%} of the fleet)")
    print(f"  scan : {len(database)} per query (100%), by definition")
    print(f"  average answer size: {found / 25:.1f} objects")
    print()

    # --- The §4.2 swap on a position update --------------------------
    swap = index.replace(object_id, plane, force=True)
    print(f"Position update for {object_id}: removed "
          f"{swap.boxes_removed} old slab boxes, inserted "
          f"{swap.boxes_inserted} new ones — no other object touched.")
    index.tree.check_invariants()
    print("R-tree invariants verified.")


if __name__ == "__main__":
    main()
