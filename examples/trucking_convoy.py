"""Trucking: proximity queries and the shape of uncertainty over time.

"Retrieve the trucks that are currently within 1 mile of truck ABT312
(which needs assistance)."  Also demonstrates §3.3's key contrast
between the policies' DBMS-side error bounds: the dl bound plateaus,
the immediate bound decays.

Run:  python examples/trucking_convoy.py
"""

from repro import delayed_linear_bounds, immediate_linear_bounds
from repro.workloads import trucking_scenario


def main() -> None:
    scenario = trucking_scenario(
        num_trucks=15, duration=30.0, seed=11, policy="dl", update_cost=5.0
    )
    print(f"Simulating {len(scenario.database)} trucks for 30 minutes "
          "on a radial highway network...")
    scenario.fleet.run()
    t = scenario.database.clock_time

    # Truck 1 "needs assistance": find everyone within 5 miles of it.
    # This is a moving-to-moving proximity query — both the stricken
    # truck and the candidates are uncertain, and the classification
    # accounts for both uncertainty intervals.
    stricken = "truck-1"
    answer_pos = scenario.database.position_of(stricken, t)
    print(f"\n{stricken} reports a breakdown near "
          f"({answer_pos.position.x:.1f}, {answer_pos.position.y:.1f}) "
          f"+/- {answer_pos.error_bound:.2f} miles")

    nearby = scenario.database.within_distance_of_object(stricken, 5.0, t)
    certain = sorted(nearby.must)
    possible = sorted(nearby.may - nearby.must)
    print(f"  trucks certainly within 5 miles : {certain}")
    print(f"  trucks possibly within 5 miles  : {possible}")

    # --- The bound-shape story (§3.3) ---------------------------------
    print("\nError bound vs. minutes since the last update "
          "(v = 1.0, V = 1.2, C = 5):")
    dl = delayed_linear_bounds(1.0, 1.2, 5.0)
    imm = immediate_linear_bounds(1.0, 1.2, 5.0)
    print(f"  {'t':>4}  {'dl bound':>9}  {'ail/cil bound':>14}")
    for minutes in (1, 2, 3, 4, 5, 8, 12, 20, 30):
        print(f"  {minutes:>4}  {dl.total(minutes):>9.3f}  "
              f"{imm.total(minutes):>14.3f}")
    print("\nThe dl bound saturates at sqrt(2DC); the immediate bound "
          "decays as 2C/t — a truck silent for 30 minutes under ail is "
          "*better* localised than one silent for 5 (it must be keeping "
          "close to its declared average speed, or it would have updated).")


if __name__ == "__main__":
    main()
