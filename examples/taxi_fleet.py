"""Taxi fleet: the paper's opening example.

"Retrieve the free cabs that are currently within 1 mile of
33 N. Michigan Ave., Chicago (to pick-up a customer)."

Builds a Manhattan-grid taxi fleet, runs it with the ail policy, then
issues the dispatch query: the within-distance range query intersected
with the ``free`` attribute.  The answer comes in two certainty tiers —
cabs that *must* be within a mile, and cabs that only *may* be.

Run:  python examples/taxi_fleet.py
"""

from repro import Point
from repro.workloads import taxi_fleet_scenario


def main() -> None:
    scenario = taxi_fleet_scenario(
        num_taxis=20, duration=20.0, seed=7, policy="ail", update_cost=5.0
    )
    min_x, min_y, max_x, max_y = scenario.network.bounding_extent()
    print(f"Simulating {len(scenario.database)} cabs for 20 minutes on a "
          f"{max_x - min_x:.0f} x {max_y - min_y:.0f} mile grid...")
    message_counts = scenario.fleet.run()
    total = sum(message_counts.values())
    print(f"  position updates sent: {total} "
          f"({total / len(message_counts):.1f} per cab)")
    print()

    # The dispatch query.  "33 N. Michigan Ave." is downtown: query at
    # the grid centre, then widen until a free cab turns up.
    pickup = Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
    t = scenario.database.clock_time
    radius = 1.0
    # The attribute filter makes this the introduction's query verbatim:
    # free cabs within `radius` of the pickup point.
    answer = scenario.database.within_distance(
        pickup, radius, t, where={"free": True}
    )
    while not answer.may and radius < max_x:
        radius *= 2.0
        answer = scenario.database.within_distance(
            pickup, radius, t, where={"free": True}
        )

    must_free = sorted(answer.must)
    maybe_free = sorted(answer.may - answer.must)

    print(f"Query: free cabs within {radius} mile of "
          f"({pickup.x}, {pickup.y}) at t = {t:.1f} min")
    print(f"  cabs examined by the index : {answer.examined} "
          f"of {len(scenario.database)}")
    print(f"  free cabs definitely there : {must_free}")
    print(f"  free cabs possibly there   : {maybe_free}")
    print()

    # Show the certainty machinery for one candidate.
    for cab in must_free + maybe_free:
        position = scenario.database.position_of(cab, t)
        actual = scenario.fleet.actual_position(cab, t)
        print(f"  {cab}: db position ({position.position.x:.2f}, "
              f"{position.position.y:.2f}), "
              f"error bound {position.error_bound:.2f} mi, "
              f"actually at ({actual.x:.2f}, {actual.y:.2f})")
        break
    else:
        print("  (no free cab nearby — dispatch the closest 'may' cab "
              "or widen the radius)")


if __name__ == "__main__":
    main()
