"""Dispatch ETA: route changes and future-position queries.

A courier rides a three-leg route (city block, connector, depot road).
Leg boundaries force route-change updates (§3.1's infinite-route-
distance rule).  Dispatch asks trajectory questions the DBMS answers
from o-planes alone — no contact with the vehicle:

* "where will the courier be in 5 minutes?"  (predicted uncertainty
  interval at a future time)
* "when might the courier first reach the depot zone, and when is it
  guaranteed to be there?"  (when-may / when-must reach)

Run:  python examples/dispatch_eta.py
"""

import random

from repro import MovingObjectDatabase, Polygon, TimeSpaceIndex, make_policy
from repro.dbms.trajectory import (
    predicted_interval,
    when_may_reach,
    when_must_reach,
)
from repro.routes.generators import straight_route, winding_route
from repro.sim.multileg import Leg, MultiLegDriver, MultiLegTrip
from repro.sim.speed_curves import HighwayCurve


def main() -> None:
    rng = random.Random(17)
    legs = [
        Leg(winding_route(5.0, rng, "city-block", origin=(0.0, 0.0),
                          max_turn_degrees=30.0)),
        Leg(straight_route(6.0, "connector", origin=(5.0 * 0.8, 0.0))),
        Leg(straight_route(8.0, "depot-road",
                           origin=(5.0 * 0.8 + 6.0, 0.0))),
    ]
    # Stitch legs end to end so geometry is contiguous.
    legs[1] = Leg(straight_route(
        6.0, "connector",
        origin=legs[0].route.polyline.end.as_tuple(),
    ))
    legs[2] = Leg(straight_route(
        8.0, "depot-road",
        origin=legs[1].route.polyline.end.as_tuple(),
    ))

    database = MovingObjectDatabase(index=TimeSpaceIndex(), horizon=60.0)
    database.schema.define_mobile_point_class("courier")
    trip = MultiLegTrip(legs, HighwayCurve(20.0, rng, cruise=0.8))
    driver = MultiLegDriver(
        "courier-1", "courier", trip, make_policy("cil", 5.0), database,
        dt=1.0 / 30.0,
    )

    print("Simulating a three-leg courier run (20 minutes)...")
    total = driver.run()
    print(f"  total messages: {total} "
          f"({len(driver.transitions)} route changes, "
          f"{driver.policy_updates} policy-triggered)")
    for transition in driver.transitions:
        print(f"  t={transition.time:5.2f}  route change "
              f"{transition.from_route} -> {transition.to_route}")
    print()

    t = database.clock_time
    record = database.record("courier-1")
    print(f"Courier is on route {record.attribute.route_id!r}; "
          f"database clock t = {t:.2f} min")

    # Where will the courier be in 5 minutes?
    interval = predicted_interval(database, "courier-1", t + 5.0)
    print(f"  in 5 minutes: somewhere in travel span "
          f"[{interval.lower:.2f}, {interval.upper:.2f}] miles along "
          f"{interval.route_id!r} (width {interval.width:.2f} mi)")

    # The depot zone sits at the end of the last leg.
    depot_end = legs[2].route.polyline.end
    zone = Polygon.rectangle(
        depot_end.x - 2.0, depot_end.y - 2.0,
        depot_end.x + 2.0, depot_end.y + 2.0,
    )
    may = when_may_reach(database, "courier-1", zone, until=t + 40.0)
    must = when_must_reach(database, "courier-1", zone, until=t + 40.0)
    print(f"  earliest possible arrival in the depot zone: "
          f"{'t = %.1f min' % may if may is not None else 'not within 40 min'}")
    print(f"  guaranteed in the depot zone by               "
          f"{'t = %.1f min' % must if must is not None else 'never certain'}")
    print()
    print("Both answers derive from the o-plane (declared speed + policy "
          "bounds) — the DBMS never contacted the vehicle.")


if __name__ == "__main__":
    main()
