"""MQL: the declarative query surface over a live fleet.

Runs the battlefield scenario, then answers the paper's motivating
questions as one-line MQL statements instead of API calls:

* "retrieve the friendly units currently in a given region"
* "retrieve the units within 3 miles of a point"
* "what is the current position of unit-1?"
* "when might unit-1 reach the extraction zone?"

Run:  python examples/mql_queries.py
"""

from repro.dbms.mql import execute
from repro.workloads import battlefield_scenario


def main() -> None:
    scenario = battlefield_scenario(num_units=16, duration=12.0, seed=23)
    print("Simulating 16 units for 12 minutes...")
    scenario.fleet.run()
    database = scenario.database
    min_x, min_y, max_x, max_y = scenario.network.bounding_extent()
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0

    region = (
        f"POLYGON (({cx - 8:.1f}, {cy - 8:.1f}), ({cx + 8:.1f}, {cy - 8:.1f}), "
        f"({cx + 8:.1f}, {cy + 8:.1f}), ({cx - 8:.1f}, {cy + 8:.1f}))"
    )

    queries = [
        f"RETRIEVE unit WHERE allegiance = 'friendly' IN {region}",
        f"RETRIEVE unit IN {region}",
        f"RETRIEVE WITHIN 5 OF ({cx:.1f}, {cy:.1f})",
        "POSITION OF unit-1",
    ]
    for text in queries:
        print(f"\nmql> {text}")
        answer = execute(database, text)
        if hasattr(answer, "may"):
            print(f"     must: {sorted(answer.must)}")
            print(f"     may : {sorted(answer.may - answer.must)}")
            print(f"     examined {answer.examined} of {len(database)} objects")
        else:
            print(f"     position ({answer.position.x:.2f}, "
                  f"{answer.position.y:.2f}) +/- {answer.error_bound:.2f} mi")

    t = database.clock_time
    zone = (
        f"POLYGON (({max_x - 6:.1f}, {max_y - 6:.1f}), ({max_x:.1f}, "
        f"{max_y - 6:.1f}), ({max_x:.1f}, {max_y:.1f}), "
        f"({max_x - 6:.1f}, {max_y:.1f}))"
    )
    text = f"WHEN MAY unit-1 REACH {zone} UNTIL {t + 30:.0f}"
    print(f"\nmql> {text}")
    eta = execute(database, text)
    print(
        f"     {'earliest possible arrival t = %.1f min' % eta if eta is not None else 'cannot reach the zone within 30 min'}"
    )


if __name__ == "__main__":
    main()
