"""Policy comparison: the paper's §3.4 evaluation, in miniature.

Sweeps the three cost-based policies (and two baselines) over a grid
of update costs on a shared set of one-hour speed-curves and prints
the three paper figures (messages, total cost, average uncertainty)
plus the update-savings table.

Run:  python examples/policy_comparison.py          (~1 minute)
"""

from repro.experiments.figures import (
    figure_messages,
    figure_total_cost,
    figure_uncertainty,
)
from repro.experiments.sweep import SweepSpec, run_policy_sweep
from repro.experiments.tables import table_update_savings


def main() -> None:
    spec = SweepSpec(
        policy_names=("dl", "ail", "cil"),
        update_costs=(1.0, 2.0, 5.0, 10.0, 20.0),
        num_curves=10,
        duration=60.0,
        dt=1.0 / 30.0,
    )
    print(f"Sweeping {len(spec.policy_names)} policies x "
          f"{len(spec.update_costs)} update costs over "
          f"{spec.num_curves} one-hour trips...\n")
    sweep = run_policy_sweep(spec)

    for figure in (
        figure_messages(sweep),
        figure_total_cost(sweep),
        figure_uncertainty(sweep),
    ):
        print(figure.render())
        print()

    print(table_update_savings(
        precision_miles=1.0, num_curves=10, duration=60.0, dt=1.0 / 30.0
    ).render())
    print()
    print("Reading guide: messages fall as C rises (updating gets "
          "expensive); the ail policy carries the lowest uncertainty "
          "and (overall) the lowest total cost — the paper's stated "
          "conclusion; and the temporal policies use a small fraction "
          "of the traditional baseline's messages (the 85% saving).")


if __name__ == "__main__":
    main()
