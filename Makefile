# Convenience targets for the repro moving-objects database.

PYTHON ?= python

.PHONY: install test bench report report-fast examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.experiments.runner

report-fast:
	$(PYTHON) -m repro.experiments.runner --fast

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
