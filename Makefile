# Convenience targets for the repro moving-objects database.

PYTHON ?= python

.PHONY: install test lint bench bench-harness report report-fast examples clean

install:
	$(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# `repro lint` is stdlib-only and always runs; ruff/mypy run when
# installed (skipped with a notice otherwise), but their findings still
# fail the target when they are present.
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src tests --baseline --flow
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "lint: mypy not installed, skipping"; \
	fi

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-harness:
	PYTHONPATH=src $(PYTHON) -m repro bench run --fast

report:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runner

report-fast:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runner --fast

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
