# Convenience targets for the repro moving-objects database.

PYTHON ?= python

.PHONY: install test bench bench-harness report report-fast examples clean

install:
	$(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-harness:
	PYTHONPATH=src $(PYTHON) -m repro bench run --fast

report:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runner

report-fast:
	PYTHONPATH=src $(PYTHON) -m repro.experiments.runner --fast

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
